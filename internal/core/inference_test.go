package core

import (
	"sync"
	"testing"

	"abnn2/internal/nn"
	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

// buildTestModel trains a small model on synthetic data and quantizes it.
func buildTestModel(t *testing.T, scheme quant.Scheme) *nn.QuantizedModel {
	t.Helper()
	m := nn.NewModel(16, 8, 4)
	m.InitXavier(prg.New(prg.SeedFromInt(9)))
	return nn.Quantize(m, scheme, 6)
}

// runInference executes a full secure inference and compares with the
// plaintext quantized reference, bit-exactly.
func runInference(t *testing.T, qm *nn.QuantizedModel, p Params, variant ReLUVariant, batch int) transport.Stats {
	t.Helper()
	ca, cb, meter := transport.MeteredPipe()
	defer ca.Close()
	arch := ArchOf(qm)
	var (
		srv  *ServerEngine
		serr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv, serr = NewServerEngine(ca, qm, p, variant)
		if serr != nil {
			return
		}
		serr = srv.Offline(batch)
		if serr != nil {
			return
		}
		serr = srv.Online()
	}()
	cli, err := NewClientEngine(cb, arch, p, variant, prg.New(prg.SeedFromInt(33)))
	if err != nil {
		t.Fatalf("client engine: %v", err)
	}
	if err := cli.Offline(batch); err != nil {
		t.Fatalf("client offline: %v", err)
	}
	// Random fixed-point inputs.
	rng := prg.New(prg.SeedFromInt(44))
	X := ring.NewMat(arch.InputSize(), batch)
	for i := range X.Data {
		X.Data[i] = p.Ring.FromSigned(int64(rng.Intn(128) - 64))
	}
	got, err := cli.Predict(X)
	wg.Wait()
	if serr != nil {
		t.Fatalf("server: %v", serr)
	}
	if err != nil {
		t.Fatalf("client predict: %v", err)
	}
	// Reference: plaintext quantized forward per column.
	for k := 0; k < batch; k++ {
		x := make(ring.Vec, arch.InputSize())
		for i := range x {
			x[i] = X.At(i, k)
		}
		want := qm.ForwardRing(p.Ring, x)
		for i := range want {
			if got.At(i, k) != want[i] {
				t.Fatalf("batch col %d output %d: secure %d != plaintext %d (variant %v)",
					k, i, p.Ring.Signed(got.At(i, k)), p.Ring.Signed(want[i]), variant)
			}
		}
	}
	return meter.Snapshot()
}

func TestInferenceMatchesPlaintextBatch1(t *testing.T) {
	for _, scheme := range []quant.Scheme{quant.Uniform(2, 4), quant.Ternary(), quant.Binary()} {
		qm := buildTestModel(t, scheme)
		p := Params{Ring: ring.New(32), Scheme: scheme}
		runInference(t, qm, p, ReLUGC, 1)
	}
}

func TestInferenceMatchesPlaintextMultiBatch(t *testing.T) {
	scheme := quant.NewBitScheme(true, 3, 3, 2)
	qm := buildTestModel(t, scheme)
	p := Params{Ring: ring.New(32), Scheme: scheme}
	runInference(t, qm, p, ReLUGC, 4)
}

func TestInferenceOptimizedReLU(t *testing.T) {
	scheme := quant.Uniform(2, 2)
	qm := buildTestModel(t, scheme)
	p := Params{Ring: ring.New(32), Scheme: scheme}
	runInference(t, qm, p, ReLUOptimized, 1)
	runInference(t, qm, p, ReLUOptimized, 3)
}

func TestInference64BitRing(t *testing.T) {
	scheme := quant.Uniform(2, 4)
	qm := buildTestModel(t, scheme)
	p := Params{Ring: ring.New(64), Scheme: scheme}
	runInference(t, qm, p, ReLUGC, 2)
}

// With requantization, secure inference over Z_2^32 must track the exact
// plaintext reference within the probabilistic-truncation slack: each
// truncation contributes at most +-1, amplified by downstream weights.
func TestInferenceWithRequant32(t *testing.T) {
	scheme := quant.Uniform(2, 4)
	m := nn.NewModel(16, 8, 4)
	m.InitXavier(prg.New(prg.SeedFromInt(9)))
	qm := nn.QuantizeRequant(m, scheme, 6, 6)
	p := Params{Ring: ring.New(32), Scheme: scheme}
	ca, cb, _ := transport.MeteredPipe()
	defer ca.Close()
	arch := ArchOf(qm)
	batch := 3
	var (
		serr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv, err := NewServerEngine(ca, qm, p, ReLUGC)
		if err == nil {
			err = srv.Offline(batch)
		}
		if err == nil {
			err = srv.Online()
		}
		serr = err
	}()
	cli, err := NewClientEngine(cb, arch, p, ReLUGC, prg.New(prg.SeedFromInt(33)))
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Offline(batch); err != nil {
		t.Fatal(err)
	}
	rng := prg.New(prg.SeedFromInt(44))
	X := ring.NewMat(arch.InputSize(), batch)
	for i := range X.Data {
		X.Data[i] = p.Ring.FromSigned(int64(rng.Intn(128) - 64))
	}
	got, err := cli.Predict(X)
	wg.Wait()
	if serr != nil || err != nil {
		t.Fatalf("%v %v", serr, err)
	}
	// Tolerance: one unit per truncation at layer 1, amplified by layer 2
	// weight magnitudes, plus layer 2's own truncation.
	var wsum int64 = 1
	for _, w := range qm.Layers[1].W {
		if w < 0 {
			wsum -= w
		} else {
			wsum += w
		}
	}
	c2 := int64(qm.Layers[1].ReqC)
	t2 := qm.Layers[1].ReqT
	tol := (wsum*c2)>>t2 + 2
	for k := 0; k < batch; k++ {
		x := make(ring.Vec, arch.InputSize())
		for i := range x {
			x[i] = X.At(i, k)
		}
		want := qm.ForwardRing(p.Ring, x)
		for i := range want {
			d := p.Ring.Signed(got.At(i, k)) - p.Ring.Signed(want[i])
			if d < -tol || d > tol {
				t.Fatalf("col %d out %d: secure %d vs reference %d (tol %d)",
					k, i, p.Ring.Signed(got.At(i, k)), p.Ring.Signed(want[i]), tol)
			}
		}
	}
}

func TestEngineReuseAcrossBatches(t *testing.T) {
	scheme := quant.Uniform(2, 2)
	qm := buildTestModel(t, scheme)
	p := Params{Ring: ring.New(32), Scheme: scheme}
	ca, cb, _ := transport.MeteredPipe()
	defer ca.Close()
	arch := ArchOf(qm)
	var (
		serr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv, err := NewServerEngine(ca, qm, p, ReLUGC)
		if err != nil {
			serr = err
			return
		}
		for round := 0; round < 2; round++ {
			if serr = srv.Offline(1); serr != nil {
				return
			}
			if serr = srv.Online(); serr != nil {
				return
			}
		}
	}()
	cli, err := NewClientEngine(cb, arch, p, ReLUGC, prg.New(prg.SeedFromInt(3)))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		if err := cli.Offline(1); err != nil {
			t.Fatalf("round %d offline: %v", round, err)
		}
		X := ring.NewMat(arch.InputSize(), 1)
		X.Data[0] = p.Ring.FromSigned(int64(round + 1))
		got, err := cli.Predict(X)
		if err != nil {
			t.Fatalf("round %d predict: %v", round, err)
		}
		x := make(ring.Vec, arch.InputSize())
		x[0] = X.Data[0]
		want := qm.ForwardRing(p.Ring, x)
		for i := range want {
			if got.At(i, 0) != want[i] {
				t.Fatalf("round %d output %d mismatch", round, i)
			}
		}
	}
	wg.Wait()
	if serr != nil {
		t.Fatal(serr)
	}
}

// Full Figure 4 network, ternary weights, batch 32 — the paper-scale
// integration check. Skipped under -short.
func TestFig4ScaleIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run skipped in -short mode")
	}
	scheme := quant.Ternary()
	m := nn.Fig4Network()
	m.InitXavier(prg.New(prg.SeedFromInt(77)))
	qm := nn.Quantize(m, scheme, 8)
	p := Params{Ring: ring.New(32), Scheme: scheme}
	stats := runInference(t, qm, p, ReLUGC, 32)
	if stats.TotalBytes() == 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestArchValidate(t *testing.T) {
	good := Arch{
		Frac:       8,
		SchemeName: "binary",
		Layers: []LayerSpec{
			{In: 4, Out: 3, ReLU: true},
			{In: 3, Out: 2},
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid arch rejected: %v", err)
	}
	bad := []Arch{
		{},
		{Layers: []LayerSpec{{In: 0, Out: 1}}},
		{Layers: []LayerSpec{{In: 2, Out: 2}, {In: 3, Out: 1}}},                                                // chain break
		{Layers: []LayerSpec{{In: 2, Out: 2, ReqT: 99}}},                                                       // bad requant
		{Layers: []LayerSpec{{In: 2, Out: 2, Pool: &nn.PoolSpec{K: 2}}}},                                       // pool sans conv
		{Frac: 99, Layers: []LayerSpec{{In: 2, Out: 2}}},                                                       // bad frac
		{Layers: []LayerSpec{{In: 4, Out: 1, Conv: &nn.ConvSpec{Ci: 1, H: 3, W: 3, Kh: 2, Kw: 2, Stride: 1}}}}, // In != conv input
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("bad arch %d validated", i)
		}
	}
}

func TestOnlineWithoutOfflineFails(t *testing.T) {
	scheme := quant.Binary()
	qm := buildTestModel(t, scheme)
	p := Params{Ring: ring.New(32), Scheme: scheme}
	ca, cb, _ := transport.MeteredPipe()
	defer ca.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	var srv *ServerEngine
	var serr error
	go func() {
		defer wg.Done()
		srv, serr = NewServerEngine(ca, qm, p, ReLUGC)
	}()
	cli, err := NewClientEngine(cb, ArchOf(qm), p, ReLUGC, prg.New(prg.SeedFromInt(5)))
	wg.Wait()
	if serr != nil || err != nil {
		t.Fatalf("setup: %v %v", serr, err)
	}
	if err := srv.Online(); err == nil {
		t.Error("server Online without Offline succeeded")
	}
	if _, err := cli.Predict(ring.NewMat(16, 1)); err == nil {
		t.Error("client Predict without Offline succeeded")
	}
}

func TestServerEngineRejectsOutOfRangeModel(t *testing.T) {
	qm := buildTestModel(t, quant.Uniform(2, 4)) // 8-bit weights
	p := Params{Ring: ring.New(32), Scheme: quant.Binary()}
	ca, cb, _ := transport.MeteredPipe()
	defer ca.Close()
	go func() {
		// Client side would block in setup; just drain.
		NewClientEngine(cb, ArchOf(qm), p, ReLUGC, prg.New(prg.SeedFromInt(6)))
	}()
	if _, err := NewServerEngine(ca, qm, p, ReLUGC); err == nil {
		t.Error("8-bit model accepted under binary scheme")
	}
}
