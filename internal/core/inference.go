package core

import (
	"fmt"

	"abnn2/internal/nn"
	"abnn2/internal/par"
	"abnn2/internal/prg"
	"abnn2/internal/ring"
)

// End-to-end secure inference (paper section 3, Figure 2). The engine
// splits work into the data-independent offline phase (triplet
// generation; the client also fixes all of its future shares) and the
// online phase (one linear message per network plus the GC activations).

// LayerSpec is the public description of one linear layer, including the
// (public) requantization parameters and conv/pool geometry when the
// model uses them.
type LayerSpec struct {
	In, Out int
	ReLU    bool
	ReqC    uint64
	ReqT    uint
	Conv    *nn.ConvSpec `json:",omitempty"`
	Pool    *nn.PoolSpec `json:",omitempty"`
}

// ColRows returns the matmul inner dimension.
func (l LayerSpec) ColRows() int {
	if l.Conv == nil {
		return l.In
	}
	return l.Conv.ColRows()
}

// Cols returns matmul columns per sample.
func (l LayerSpec) Cols() int {
	if l.Conv == nil {
		return 1
	}
	return l.Conv.Positions()
}

// OutputSize returns the flattened per-sample output length after
// pooling.
func (l LayerSpec) OutputSize() int {
	p := l.Cols()
	if l.Pool != nil {
		p /= l.Pool.K * l.Pool.K
	}
	return l.Out * p
}

// Arch is the public architecture both parties know: layer shapes, ReLU
// positions, and the input fixed-point precision. Weights stay private to
// the server; inputs stay private to the client.
type Arch struct {
	Layers []LayerSpec
	Frac   uint
	// SchemeName is the quantization scheme designation (quant.Parse
	// syntax); the scheme is public protocol configuration.
	SchemeName string
}

// ArchOf extracts the public architecture of a quantized model.
func ArchOf(qm *nn.QuantizedModel) Arch {
	a := Arch{Frac: qm.Frac, SchemeName: qm.Layers[0].Scheme.Name()}
	for _, l := range qm.Layers {
		a.Layers = append(a.Layers, LayerSpec{
			In: l.In, Out: l.Out, ReLU: l.ReLU,
			ReqC: l.ReqC, ReqT: l.ReqT, Conv: l.Conv, Pool: l.Pool,
		})
	}
	return a
}

// InputSize returns the network input dimension.
func (a Arch) InputSize() int { return a.Layers[0].In }

// OutputSize returns the network output dimension.
func (a Arch) OutputSize() int { return a.Layers[len(a.Layers)-1].OutputSize() }

// Validate checks structural consistency. The client receives the Arch
// over the network (it is public data, but still attacker-shaped bytes),
// so every geometric assumption the engine makes is checked here.
func (a Arch) Validate() error {
	if len(a.Layers) == 0 {
		return fmt.Errorf("core: architecture has no layers")
	}
	if a.Frac > 62 {
		return fmt.Errorf("core: fixed-point precision %d too large", a.Frac)
	}
	for i, l := range a.Layers {
		if l.In <= 0 || l.Out <= 0 || l.In > 1<<24 || l.Out > 1<<24 {
			return fmt.Errorf("core: layer %d has invalid shape %dx%d", i, l.Out, l.In)
		}
		if l.ReqT > 62 {
			return fmt.Errorf("core: layer %d requant shift %d too large", i, l.ReqT)
		}
		if l.Conv != nil {
			if err := l.Conv.Validate(); err != nil {
				return fmt.Errorf("core: layer %d: %w", i, err)
			}
			if l.In != l.Conv.InputSize() {
				return fmt.Errorf("core: layer %d input %d does not match conv geometry %d",
					i, l.In, l.Conv.InputSize())
			}
		}
		if l.Pool != nil {
			if l.Conv == nil {
				return fmt.Errorf("core: layer %d pools without a convolution", i)
			}
			if err := l.Pool.Validate(l.Conv.OutH(), l.Conv.OutW()); err != nil {
				return fmt.Errorf("core: layer %d: %w", i, err)
			}
		}
		if i > 0 && a.Layers[i-1].OutputSize() != l.In {
			return fmt.Errorf("core: layer %d expects %d inputs, previous layer outputs %d",
				i, l.In, a.Layers[i-1].OutputSize())
		}
	}
	return nil
}

// shareCols expands a share matrix (features x batch) into matmul column
// form: the matrix itself for FC layers, a per-sample im2col for
// convolutions (a public rearrangement, applied locally to shares).
func shareCols(l LayerSpec, share *ring.Mat) *ring.Mat {
	if l.Conv == nil {
		return share
	}
	batch := share.Cols
	n, p := l.Conv.ColRows(), l.Conv.Positions()
	out := ring.NewMat(n, batch*p)
	x := make(ring.Vec, l.In)
	for k := 0; k < batch; k++ {
		for i := 0; i < l.In; i++ {
			x[i] = share.At(i, k)
		}
		col := l.Conv.Im2ColRing(x)
		for r := 0; r < n; r++ {
			copy(out.Row(r)[k*p:(k+1)*p], col[r*p:(r+1)*p])
		}
	}
	return out
}

// foldBatch reshapes a product matrix Y (Out x batch*P, sample-major
// columns) into the feature-major share layout (Out*P x batch).
func foldBatch(y *ring.Mat, batch int) *ring.Mat {
	if y.Cols == batch {
		return y // P = 1: already feature-major
	}
	out := y.Rows
	p := y.Cols / batch
	f := ring.NewMat(out*p, batch)
	for o := 0; o < out; o++ {
		yr := y.Row(o)
		for k := 0; k < batch; k++ {
			for j := 0; j < p; j++ {
				f.Set(o*p+j, k, yr[k*p+j])
			}
		}
	}
	return f
}

// poolWindowsFlat builds the pooling window index lists over the
// flattened (features x batch) layout, in the output order of the next
// layer's share matrix.
func poolWindowsFlat(l LayerSpec, batch int) [][]int {
	per := l.Pool.Windows(l.Out, l.Conv.OutH(), l.Conv.OutW())
	wins := make([][]int, 0, len(per)*batch)
	for _, win := range per {
		for k := 0; k < batch; k++ {
			w2 := make([]int, len(win))
			for i, pi := range win {
				w2[i] = pi*batch + k
			}
			wins = append(wins, w2)
		}
	}
	return wins
}

const (
	sessionTriplets = 1
	sessionGC       = 2
)

// ServerEngine is the model owner's side of secure inference.
type ServerEngine struct {
	params  Params
	variant ReLUVariant
	model   *nn.QuantizedModel
	arch    Arch
	conn    Conn
	trip    *ServerTriplets
	nl      *ServerNonlinear
	sched   Schedule

	batch int
	u     []*ring.Mat // per linear layer
}

// ClientEngine is the input owner's side.
type ClientEngine struct {
	params  Params
	variant ReLUVariant
	arch    Arch
	conn    Conn
	trip    *ClientTriplets
	nl      *ClientNonlinear
	rng     *prg.PRG
	sched   Schedule

	batch int
	r0    *ring.Mat   // input mask
	z1    []*ring.Mat // client activation shares per layer (nil when no ReLU)
	v     []*ring.Mat // per linear layer
}

// NewServerEngine sets up the server side: base OTs for the triplet and
// GC subsystems run here, in a fixed order mirrored by NewClientEngine.
func NewServerEngine(conn Conn, model *nn.QuantizedModel, p Params, variant ReLUVariant) (*ServerEngine, error) {
	return NewServerEngineSeeded(conn, model, p, variant, prg.New(prg.NewSeed()))
}

// NewServerEngineSeeded is NewServerEngine with caller-controlled
// randomness. With both parties seeded the whole session transcript is
// byte-reproducible, which the conformance harness (internal/testkit)
// relies on for golden wire transcripts; production callers should let
// NewServerEngine draw an OS seed.
func NewServerEngineSeeded(conn Conn, model *nn.QuantizedModel, p Params, variant ReLUVariant, rng *prg.PRG) (*ServerEngine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	min, max := p.Scheme.Range()
	for li, l := range model.Layers {
		for _, w := range l.W {
			if w < min || w > max {
				return nil, fmt.Errorf("core: layer %d weight %d outside scheme %s range", li, w, p.Scheme.Name())
			}
		}
	}
	trip, err := NewServerTripletsSeeded(conn, p, sessionTriplets, rng.Child("triplets"))
	if err != nil {
		return nil, err
	}
	nl, err := NewServerNonlinear(conn, p.Ring, sessionGC, rng.Child("gc"))
	if err != nil {
		return nil, err
	}
	nl.SetWorkers(p.Workers)
	return &ServerEngine{params: p, variant: variant, model: model, arch: ArchOf(model), conn: conn, trip: trip, nl: nl}, nil
}

// NewClientEngine sets up the client side against the public architecture.
func NewClientEngine(conn Conn, arch Arch, p Params, variant ReLUVariant, rng *prg.PRG) (*ClientEngine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	trip, err := NewClientTriplets(conn, p, sessionTriplets, rng.Child("triplets"))
	if err != nil {
		return nil, err
	}
	nl, err := NewClientNonlinear(conn, p.Ring, sessionGC, rng.Child("gc"))
	if err != nil {
		return nil, err
	}
	nl.SetWorkers(p.Workers)
	return &ClientEngine{params: p, variant: variant, arch: arch, conn: conn, trip: trip, nl: nl, rng: rng}, nil
}

// Arch returns the public architecture of the served model.
func (e *ServerEngine) Arch() Arch { return e.arch }

// SetSchedule fixes the per-layer backend schedule subsequent Offline
// calls run under (nil restores the all-ABNN2 default). Weights are
// validated against each choice, so an unrepresentable plan fails here
// rather than mid-protocol.
func (e *ServerEngine) SetSchedule(s Schedule) error {
	weights := make([][]int64, len(e.model.Layers))
	for i, l := range e.model.Layers {
		weights[i] = l.W
	}
	if err := s.Validate(e.arch, weights); err != nil {
		return err
	}
	e.sched = s
	return nil
}

// SetSchedule is the client-side counterpart; the client holds no
// weights, so only structural validity is checked.
func (e *ClientEngine) SetSchedule(s Schedule) error {
	if err := s.Validate(e.arch, nil); err != nil {
		return err
	}
	e.sched = s
	return nil
}

// Offline runs the server's data-independent phase for one batch of the
// given size. It may be called again after Online to provision the next
// batch. Sessions drawing from a precompute bank skip it and InstallCorr
// a pre-generated half instead.
func (e *ServerEngine) Offline(batch int) (err error) {
	if batch <= 0 {
		return fmt.Errorf("core: batch must be positive")
	}
	sp := e.params.Trace.Start("offline").SetBatch(batch)
	defer func() { sp.End(err) }()
	corr, err := e.trip.OfflineCorrSched(e.model, batch, e.sched)
	if err != nil {
		return err
	}
	return e.InstallCorr(corr)
}

// Offline runs the client's data-independent phase: it samples the input
// mask and every future activation share, then generates the matching
// triplets layer by layer. Sessions drawing from a precompute bank skip
// it and InstallCorr a pre-generated half instead.
func (e *ClientEngine) Offline(batch int) (err error) {
	if batch <= 0 {
		return fmt.Errorf("core: batch must be positive")
	}
	sp := e.params.Trace.Start("offline").SetBatch(batch)
	defer func() { sp.End(err) }()
	corr, err := e.trip.OfflineCorrSched(e.arch, e.rng, batch, e.sched)
	if err != nil {
		return err
	}
	return e.InstallCorr(corr)
}

// Online runs one inference batch on the server side, consuming the
// offline state: the client ends up with the full output scores.
func (e *ServerEngine) Online() error { return e.online(false) }

// OnlineArgmax is Online but with a private argmax finish: the client
// learns only the top class of each sample, and the server learns
// nothing at all (it forwards masked indices). The client must call
// PredictArgmax.
func (e *ServerEngine) OnlineArgmax() error { return e.online(true) }

func (e *ServerEngine) online(argmax bool) (err error) {
	if e.batch == 0 {
		return fmt.Errorf("core: server Online without Offline")
	}
	sp := e.params.Trace.Start("online").SetBatch(e.batch)
	defer func() { sp.End(err) }()
	rg := e.params.Ring
	isp := e.params.Trace.Start("input")
	raw, err := e.conn.Recv()
	isp.End(err)
	if err != nil {
		return fmt.Errorf("core: recv masked input: %w", err)
	}
	in := e.model.Layers[0].In
	data, rest, err := rg.DecodeVec(raw, in*e.batch)
	if err != nil || len(rest) != 0 {
		return fmt.Errorf("core: masked input malformed: %v", err)
	}
	z0 := &ring.Mat{Rows: in, Cols: e.batch, Data: data}
	for li, l := range e.model.Layers {
		spec := e.arch.Layers[li]
		w := l.WMat(rg)
		// The online matmul is the server's heaviest local step; rows of
		// the product touch disjoint output slices, so they fan out across
		// the worker pool.
		msp := e.params.Trace.Start("matmul").SetLayer(li).SetWorkers(par.Workers(e.params.Workers))
		cols := shareCols(spec, z0)
		y0 := ring.NewMat(w.Rows, cols.Cols)
		par.Chunks(e.params.Workers, w.Rows, func(_, lo, hi int) {
			rg.MulMatRows(w, cols, y0, lo, hi)
		})
		y0 = rg.AddMat(y0, e.u[li])
		// Bias is server-local: add to every column of the output row.
		for i := 0; i < l.Out; i++ {
			b := rg.FromSigned(l.B[i])
			row := y0.Row(i)
			for k := range row {
				row[k] = rg.Add(row[k], b)
			}
		}
		if l.ReqC != 0 {
			RequantVec0(rg, y0.Data, l.ReqC, l.ReqT)
		}
		f0 := foldBatch(y0, e.batch)
		msp.End(nil)
		switch {
		case spec.Pool != nil:
			psp := e.params.Trace.Start("pool").SetLayer(li)
			zvec, err := e.nl.MaxPoolServer(f0.Data, poolWindowsFlat(spec, e.batch), l.ReLU)
			psp.End(err)
			if err != nil {
				return fmt.Errorf("core: server pool layer %d: %w", li, err)
			}
			z0 = &ring.Mat{Rows: spec.OutputSize(), Cols: e.batch, Data: zvec}
		case l.ReLU:
			rsp := e.params.Trace.Start("relu").SetLayer(li)
			zvec, err := e.nl.ReLUServer(e.variant, f0.Data)
			rsp.End(err)
			if err != nil {
				return fmt.Errorf("core: server ReLU layer %d: %w", li, err)
			}
			z0 = &ring.Mat{Rows: spec.OutputSize(), Cols: e.batch, Data: zvec}
		default:
			z0 = f0
		}
	}
	if argmax {
		n := z0.Rows
		asp := e.params.Trace.Start("argmax")
		err := e.nl.ArgmaxServer(sampleMajor(z0), n, e.batch)
		asp.End(err)
		if err != nil {
			return fmt.Errorf("core: server argmax: %w", err)
		}
	} else {
		osp := e.params.Trace.Start("output")
		err := e.conn.Send(rg.AppendVec(nil, z0.Data))
		osp.End(err)
		if err != nil {
			return fmt.Errorf("core: send output share: %w", err)
		}
	}
	e.batch = 0
	return nil
}

// sampleMajor regathers a feature-major share matrix (features x batch)
// into the sample-major vector layout the argmax protocol uses.
func sampleMajor(m *ring.Mat) ring.Vec {
	out := make(ring.Vec, m.Rows*m.Cols)
	for k := 0; k < m.Cols; k++ {
		for i := 0; i < m.Rows; i++ {
			out[k*m.Rows+i] = m.At(i, k)
		}
	}
	return out
}

// Predict runs one inference batch on the client side. X is the encoded
// input matrix (InputSize x batch). It returns the reconstructed network
// outputs (OutputSize x batch).
func (e *ClientEngine) Predict(X *ring.Mat) (res *ring.Mat, err error) {
	sp := e.params.Trace.Start("online").SetBatch(e.batch)
	defer func() { sp.End(err) }()
	f1, err := e.predictShares(X)
	if err != nil {
		return nil, err
	}
	rg := e.params.Ring
	osp := e.params.Trace.Start("output")
	raw, err := e.conn.Recv()
	osp.End(err)
	if err != nil {
		return nil, fmt.Errorf("core: recv output share: %w", err)
	}
	out := e.arch.OutputSize()
	y0, rest, err := rg.DecodeVec(raw, out*e.batch)
	if err != nil || len(rest) != 0 {
		return nil, fmt.Errorf("core: output share malformed: %v", err)
	}
	res = &ring.Mat{Rows: out, Cols: e.batch, Data: rg.AddVec(y0, f1.Data)}
	e.batch = 0
	return res, nil
}

// PredictArgmax runs one inference batch ending in the private argmax
// protocol (pair with ServerEngine.OnlineArgmax): the client learns only
// the winning class per sample.
func (e *ClientEngine) PredictArgmax(X *ring.Mat) (classes []int, err error) {
	sp := e.params.Trace.Start("online").SetBatch(e.batch)
	defer func() { sp.End(err) }()
	f1, err := e.predictShares(X)
	if err != nil {
		return nil, err
	}
	n := e.arch.OutputSize()
	asp := e.params.Trace.Start("argmax")
	classes, err = e.nl.ArgmaxClient(sampleMajor(f1), n, e.batch)
	asp.End(err)
	if err != nil {
		return nil, fmt.Errorf("core: client argmax: %w", err)
	}
	e.batch = 0
	return classes, nil
}

// predictShares runs the linear+activation pipeline, returning the
// client's share of the final layer output (feature-major).
func (e *ClientEngine) predictShares(X *ring.Mat) (*ring.Mat, error) {
	if e.batch == 0 {
		return nil, fmt.Errorf("core: client Predict without Offline")
	}
	rg := e.params.Ring
	if X.Rows != e.arch.InputSize() || X.Cols != e.batch {
		return nil, fmt.Errorf("core: input is %dx%d, want %dx%d", X.Rows, X.Cols, e.arch.InputSize(), e.batch)
	}
	// Send the masked input <x>_0 = x - r.
	x0 := rg.SubVec(X.Data, e.r0.Data)
	isp := e.params.Trace.Start("input")
	if err := e.conn.Send(rg.AppendVec(nil, x0)); err != nil {
		isp.End(err)
		return nil, fmt.Errorf("core: send masked input: %w", err)
	}
	isp.End(nil)
	var f1 *ring.Mat
	for li, l := range e.arch.Layers {
		y1 := e.v[li]
		if l.ReqC != 0 {
			RequantVec1(rg, y1.Data, l.ReqC, l.ReqT)
		}
		f1 = foldBatch(y1, e.batch)
		switch {
		case l.Pool != nil:
			psp := e.params.Trace.Start("pool").SetLayer(li)
			err := e.nl.MaxPoolClient(f1.Data, e.z1[li].Data, poolWindowsFlat(l, e.batch), l.ReLU)
			psp.End(err)
			if err != nil {
				return nil, fmt.Errorf("core: client pool layer %d: %w", li, err)
			}
		case l.ReLU:
			rsp := e.params.Trace.Start("relu").SetLayer(li)
			err := e.nl.ReLUClient(e.variant, f1.Data, e.z1[li].Data)
			rsp.End(err)
			if err != nil {
				return nil, fmt.Errorf("core: client ReLU layer %d: %w", li, err)
			}
		}
	}
	// If the final layer ends in a GC reshare, the client's output share
	// is the z1 it chose for that layer, not the triplet share.
	if last := len(e.arch.Layers) - 1; e.arch.Layers[last].ReLU || e.arch.Layers[last].Pool != nil {
		f1 = e.z1[last]
	}
	return f1, nil
}
