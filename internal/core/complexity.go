package core

import (
	"abnn2/internal/otext"
	"abnn2/internal/quant"
)

// Analytic communication/OT-count formulas reproducing the paper's
// Table 1. These are cross-checked against measured wire bytes in the
// test suite (TestCommunicationMatchesTable1) — the implementation's
// traffic equals the formulas exactly, framing aside.

// Complexity is one row of Table 1 for a concrete shape and scheme.
type Complexity struct {
	Label    string
	NumOTs   int64   // # OT invocations
	CommBits float64 // total communication in bits
}

// CommMB returns communication in MiB (the paper's tables use MiB and
// label it MB; we follow its convention when printing).
func (c Complexity) CommMB() float64 { return c.CommBits / 8 / (1 << 20) }

// SecureMLComplexity evaluates Table 1's SecureML column: OT count
// l(l+1)/128 * mno and communication mno*l(l+1)*(1+kappa/64) bits.
func SecureMLComplexity(l uint, sh MatShape) Complexity {
	mno := int64(sh.M) * int64(sh.N) * int64(sh.O)
	ll1 := float64(l) * float64(l+1)
	return Complexity{
		Label:    "SecureML",
		NumOTs:   int64(ll1/128*float64(mno) + 0.5),
		CommBits: float64(mno) * ll1 * (1 + float64(otext.Kappa)/64),
	}
}

// MultiBatchComplexity evaluates Table 1's "Ours' M-Batch" column for a
// (possibly mixed-N) scheme: per fragment, o*l*N payload bits plus the
// 2*kappa column-matrix bits, summed over gamma*m*n OTs.
func MultiBatchComplexity(l uint, scheme quant.Scheme, sh MatShape) Complexity {
	mn := int64(sh.M) * int64(sh.N)
	var bits float64
	for f := 0; f < scheme.Gamma(); f++ {
		n := float64(scheme.FragmentN(f))
		bits += float64(mn) * (float64(sh.O)*float64(l)*n + 2*otext.Kappa)
	}
	return Complexity{
		Label:    "Ours M-Batch " + scheme.Name(),
		NumOTs:   int64(scheme.Gamma()) * mn,
		CommBits: bits,
	}
}

// OneBatchComplexity evaluates Table 1's "Ours' 1-Batch" column:
// l*(N-1) + 2*kappa bits per OT.
func OneBatchComplexity(l uint, scheme quant.Scheme, sh MatShape) Complexity {
	mn := int64(sh.M) * int64(sh.N)
	var bits float64
	for f := 0; f < scheme.Gamma(); f++ {
		n := float64(scheme.FragmentN(f))
		bits += float64(mn) * (float64(l)*(n-1) + 2*otext.Kappa)
	}
	return Complexity{
		Label:    "Ours 1-Batch " + scheme.Name(),
		NumOTs:   int64(scheme.Gamma()) * mn,
		CommBits: bits,
	}
}

// MiniONNComplexity models the Paillier baseline's offline traffic: the
// client uploads n*o ciphertexts of Enc(r), the server returns m*o
// ciphertexts of Enc(W*r - u), each ciphertext 2*keyBits bits; no OTs.
func MiniONNComplexity(keyBits int, sh MatShape) Complexity {
	ct := 2 * float64(keyBits)
	return Complexity{
		Label:    "MiniONN",
		CommBits: (float64(sh.N) + float64(sh.M)) * float64(sh.O) * ct,
	}
}

// QuotientComplexity models the ternary correlated-OT baseline: 2 COTs
// per weight (one per nonzero sign candidate), each costing l payload
// bits plus the 2*kappa column-matrix bits. Vector-only (o = 1).
func QuotientComplexity(l uint, sh MatShape) Complexity {
	mn := int64(sh.M) * int64(sh.N)
	return Complexity{
		Label:    "QUOTIENT",
		NumOTs:   2 * mn,
		CommBits: 2 * float64(mn) * (float64(l) + 2*otext.Kappa),
	}
}

// OfflineComplexity returns the formula matching the implementation's
// mode selection for a batch size.
func OfflineComplexity(l uint, scheme quant.Scheme, sh MatShape) Complexity {
	if sh.O == 1 {
		return OneBatchComplexity(l, scheme, sh)
	}
	return MultiBatchComplexity(l, scheme, sh)
}
