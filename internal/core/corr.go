package core

import (
	"fmt"

	"abnn2/internal/nn"
	"abnn2/internal/par"
	"abnn2/internal/prg"
	"abnn2/internal/ring"
)

// Correlation state: the product of the data-independent offline phase,
// reified as a value so it can be generated away from the session that
// consumes it (see internal/bank). A correlation pair is bound to one
// (model, ring, scheme, batch) tuple and to a single online batch — the
// online phase consumes its matrices in place, so installing the same
// half twice is a correlation-reuse bug, not a supported operation.

// ServerCorr is the server's half of one batch's offline output: the U
// triplet share of every linear layer, U + V = W * R.
type ServerCorr struct {
	Batch int
	U     []*ring.Mat // per linear layer, l.Out x batch*l.Cols()
}

// ClientCorr is the client's half: the input mask, the V triplet shares,
// and the client's pre-chosen next-layer shares for every GC junction.
type ClientCorr struct {
	Batch int
	R0    *ring.Mat   // input mask, InputSize x batch
	V     []*ring.Mat // per linear layer, l.Out x batch*l.Cols()
	Z1    []*ring.Mat // per layer; non-nil exactly for ReLU/pool layers
}

// OfflineCorr runs the server side of the offline phase for one batch and
// returns the resulting correlation half without installing it anywhere.
// It is the interactive part of ServerEngine.Offline, split out so a
// precompute service can run it against the matching client generator
// ahead of any session.
func (s *ServerTriplets) OfflineCorr(model *nn.QuantizedModel, batch int) (*ServerCorr, error) {
	return s.OfflineCorrSched(model, batch, nil)
}

// OfflineCorrSched is OfflineCorr under a per-layer backend schedule. A
// nil schedule is the legacy all-ABNN2 path, byte-identical to
// OfflineCorr. Every backend yields the same object — the layer's U
// share — so the returned correlation is interchangeable downstream;
// only the wire bytes spent producing it differ.
func (s *ServerTriplets) OfflineCorrSched(model *nn.QuantizedModel, batch int, sched Schedule) (*ServerCorr, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("core: batch must be positive")
	}
	if sched != nil && len(sched) != len(model.Layers) {
		return nil, fmt.Errorf("core: schedule has %d layers, model has %d", len(sched), len(model.Layers))
	}
	corr := &ServerCorr{Batch: batch, U: make([]*ring.Mat, 0, len(model.Layers))}
	for li, l := range model.Layers {
		// Convolutions multiply the same weights across every output
		// position, so their OT columns include the spatial positions —
		// exactly the paper's multi-batch reuse, applied to space instead
		// of (only) batch.
		sh := MatShape{M: l.Out, N: l.ColRows(), O: batch * l.Cols()}
		var ch LayerChoice
		if sched != nil {
			ch = sched[li]
		}
		lsp := s.params.Trace.Start("triplets").SetLayer(li).SetWorkers(par.Workers(s.params.Workers))
		u, err := s.generateLayer(ch, sh, l.W)
		lsp.End(err)
		if err != nil {
			return nil, fmt.Errorf("core: server offline layer %d (%s): %w", li, ch.Backend, err)
		}
		corr.U = append(corr.U, u)
	}
	return corr, nil
}

// generateLayer dispatches one layer's triplet generation to its
// scheduled backend.
func (s *ServerTriplets) generateLayer(ch LayerChoice, sh MatShape, W []int64) (*ring.Mat, error) {
	switch ch.Backend {
	case BackendABNN2:
		return s.GenerateServerScheme(sh, W, ModeFor(sh.O), ch.Scheme)
	case BackendSecureML:
		g, err := s.secureML()
		if err != nil {
			return nil, err
		}
		return g.GenerateServer(W, sh.M, sh.N, sh.O)
	case BackendMiniONN:
		g, err := s.miniONN()
		if err != nil {
			return nil, err
		}
		return g.GenerateServer(W, sh.M, sh.N, sh.O)
	case BackendQuotient:
		if sh.O != 1 {
			return nil, fmt.Errorf("core: quotient backend requires o=1, got o=%d", sh.O)
		}
		g, err := s.quotient()
		if err != nil {
			return nil, err
		}
		u, err := g.GenerateServer(W, sh.M, sh.N)
		if err != nil {
			return nil, err
		}
		return &ring.Mat{Rows: sh.M, Cols: 1, Data: u}, nil
	}
	return nil, fmt.Errorf("core: unknown backend %d", uint8(ch.Backend))
}

// OfflineCorr runs the client side of the offline phase: it samples the
// input mask and every future activation share from shareRNG (the triplet
// masking randomness comes from the generator's own stream), then
// generates the matching triplets layer by layer.
func (c *ClientTriplets) OfflineCorr(arch Arch, shareRNG *prg.PRG, batch int) (*ClientCorr, error) {
	return c.OfflineCorrSched(arch, shareRNG, batch, nil)
}

// OfflineCorrSched is OfflineCorr under a per-layer backend schedule
// (nil = all-ABNN2, byte-identical to OfflineCorr). The share sampling
// from shareRNG is schedule-independent, so the same seed yields the
// same R0/Z1 under every schedule.
func (c *ClientTriplets) OfflineCorrSched(arch Arch, shareRNG *prg.PRG, batch int, sched Schedule) (*ClientCorr, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("core: batch must be positive")
	}
	if sched != nil && len(sched) != len(arch.Layers) {
		return nil, fmt.Errorf("core: schedule has %d layers, architecture has %d", len(sched), len(arch.Layers))
	}
	rg := c.params.Ring
	corr := &ClientCorr{
		Batch: batch,
		R0:    shareRNG.Mat(rg, arch.InputSize(), batch),
		V:     make([]*ring.Mat, 0, len(arch.Layers)),
		Z1:    make([]*ring.Mat, len(arch.Layers)),
	}
	r := corr.R0
	for li, l := range arch.Layers {
		sh := MatShape{M: l.Out, N: l.ColRows(), O: batch * l.Cols()}
		var ch LayerChoice
		if sched != nil {
			ch = sched[li]
		}
		lsp := c.params.Trace.Start("triplets").SetLayer(li).SetWorkers(par.Workers(c.params.Workers))
		v, err := c.generateLayer(ch, sh, shareCols(l, r))
		lsp.End(err)
		if err != nil {
			return nil, fmt.Errorf("core: client offline layer %d (%s): %w", li, ch.Backend, err)
		}
		corr.V = append(corr.V, v)
		switch {
		case l.ReLU || l.Pool != nil:
			// The GC reshare lets the client fix its next-layer share now.
			corr.Z1[li] = shareRNG.Mat(rg, l.OutputSize(), batch)
			r = corr.Z1[li]
		case li+1 < len(arch.Layers):
			// Purely linear junction: the client's share of this layer's
			// output is its (requantized) triplet share, already known.
			next := foldBatch(v.Clone(), batch)
			if l.ReqC != 0 {
				RequantVec1(rg, next.Data, l.ReqC, l.ReqT)
			}
			r = next
		}
	}
	return corr, nil
}

// generateLayer is the client-side backend dispatch; R is the client's
// n x o share matrix for the layer.
func (c *ClientTriplets) generateLayer(ch LayerChoice, sh MatShape, R *ring.Mat) (*ring.Mat, error) {
	switch ch.Backend {
	case BackendABNN2:
		return c.GenerateClientScheme(sh, R, ModeFor(sh.O), ch.Scheme)
	case BackendSecureML:
		g, err := c.secureML()
		if err != nil {
			return nil, err
		}
		return g.GenerateClient(sh.M, R)
	case BackendMiniONN:
		g, err := c.miniONN()
		if err != nil {
			return nil, err
		}
		return g.GenerateClient(sh.M, R)
	case BackendQuotient:
		if sh.O != 1 {
			return nil, fmt.Errorf("core: quotient backend requires o=1, got o=%d", sh.O)
		}
		g, err := c.quotient()
		if err != nil {
			return nil, err
		}
		v, err := g.GenerateClient(sh.M, ring.Vec(R.Data))
		if err != nil {
			return nil, err
		}
		return &ring.Mat{Rows: sh.M, Cols: 1, Data: v}, nil
	}
	return nil, fmt.Errorf("core: unknown backend %d", uint8(ch.Backend))
}

// InstallCorr arms the engine with a precomputed correlation half, in
// place of running Offline inline. The half must have been generated
// against this exact model, ring, and scheme by the paired client
// generator; shapes are fully validated (a half from the wrong pool is an
// error, never a panic deeper in the online phase). The corr is consumed:
// the online phase mutates its matrices, so each half installs at most
// once.
func (e *ServerEngine) InstallCorr(c *ServerCorr) error {
	if c == nil || c.Batch <= 0 {
		return fmt.Errorf("core: install server corr: missing or empty correlation")
	}
	if len(c.U) != len(e.model.Layers) {
		return fmt.Errorf("core: install server corr: %d layers, model has %d", len(c.U), len(e.model.Layers))
	}
	for li, l := range e.model.Layers {
		u := c.U[li]
		if u == nil || u.Rows != l.Out || u.Cols != c.Batch*l.Cols() {
			return fmt.Errorf("core: install server corr: layer %d share malformed", li)
		}
	}
	e.u = c.U
	e.batch = c.Batch
	return nil
}

// InstallCorr is the client-side counterpart of the server's InstallCorr;
// the same single-use contract applies.
func (e *ClientEngine) InstallCorr(c *ClientCorr) error {
	if c == nil || c.Batch <= 0 {
		return fmt.Errorf("core: install client corr: missing or empty correlation")
	}
	if len(c.V) != len(e.arch.Layers) || len(c.Z1) != len(e.arch.Layers) {
		return fmt.Errorf("core: install client corr: %d/%d layers, arch has %d",
			len(c.V), len(c.Z1), len(e.arch.Layers))
	}
	if c.R0 == nil || c.R0.Rows != e.arch.InputSize() || c.R0.Cols != c.Batch {
		return fmt.Errorf("core: install client corr: input mask malformed")
	}
	for li, l := range e.arch.Layers {
		v := c.V[li]
		if v == nil || v.Rows != l.Out || v.Cols != c.Batch*l.Cols() {
			return fmt.Errorf("core: install client corr: layer %d triplet share malformed", li)
		}
		gc := l.ReLU || l.Pool != nil
		z := c.Z1[li]
		if gc && (z == nil || z.Rows != l.OutputSize() || z.Cols != c.Batch) {
			return fmt.Errorf("core: install client corr: layer %d activation share malformed", li)
		}
		if !gc && z != nil {
			return fmt.Errorf("core: install client corr: layer %d has a share but no GC junction", li)
		}
	}
	e.r0 = c.R0
	e.v = c.V
	e.z1 = c.Z1
	e.batch = c.Batch
	return nil
}
