package core

import "abnn2/internal/ring"

// Local probabilistic share truncation, the SecureML (S&P'17, §4.1)
// technique. ABNN2 itself never rescales activations, which means a
// multi-layer network overflows Z_2^32 for realistic magnitudes; the
// paper benchmarks cost only and leaves this gap open. We close it the
// way SecureML does:
//
// Given additive shares z0 + z1 = z mod 2^l with |z| << 2^(l-1), each
// party shifts its own share locally:
//
//	z0' = floor(z0 / 2^t)                      (server)
//	z1' = -floor((2^l - z1) / 2^t) mod 2^l     (client)
//
// Then z0' + z1' = floor(z / 2^t) + e with e in {-1, 0, +1}, except with
// probability about |z| / 2^(l-1) (when the shares wrap), which is
// negligible while values stay far from the ring boundary. No
// communication, no interaction.
//
// Requantization combines a public scalar multiply (free on additive
// shares) with truncation to map a layer's raw integer output back to
// the activation fixed-point scale: y' ~= y * c / 2^t for the public
// rational c/2^t chosen at quantization time (see nn.QuantizeRequant).

// TruncShare0 truncates the server-side share by t bits.
func TruncShare0(rg ring.Ring, z ring.Elem, t uint) ring.Elem {
	return (z & rg.Mask()) >> t
}

// TruncShare1 truncates the client-side share by t bits.
func TruncShare1(rg ring.Ring, z ring.Elem, t uint) ring.Elem {
	neg := rg.Neg(z)
	return rg.Neg(neg >> t)
}

// TruncVec0 truncates a whole server-side share vector in place.
func TruncVec0(rg ring.Ring, z ring.Vec, t uint) {
	for i := range z {
		z[i] = TruncShare0(rg, z[i], t)
	}
}

// TruncVec1 truncates a whole client-side share vector in place.
func TruncVec1(rg ring.Ring, z ring.Vec, t uint) {
	for i := range z {
		z[i] = TruncShare1(rg, z[i], t)
	}
}

// RequantShare0 applies the public rescale c/2^t to a server share.
func RequantShare0(rg ring.Ring, z ring.Elem, c uint64, t uint) ring.Elem {
	return TruncShare0(rg, rg.MulConst(c, z), t)
}

// RequantShare1 applies the public rescale c/2^t to a client share.
func RequantShare1(rg ring.Ring, z ring.Elem, c uint64, t uint) ring.Elem {
	return TruncShare1(rg, rg.MulConst(c, z), t)
}

// RequantVec0 rescales a server share vector in place.
func RequantVec0(rg ring.Ring, z ring.Vec, c uint64, t uint) {
	for i := range z {
		z[i] = RequantShare0(rg, z[i], c, t)
	}
}

// RequantVec1 rescales a client share vector in place.
func RequantVec1(rg ring.Ring, z ring.Vec, c uint64, t uint) {
	for i := range z {
		z[i] = RequantShare1(rg, z[i], c, t)
	}
}

// TruncExact computes the plaintext reference floor(signed(z) * c / 2^t)
// embedded back in the ring; the secure result differs from it by at most
// one unit per truncation (w.h.p.).
func TruncExact(rg ring.Ring, z ring.Elem, c uint64, t uint) ring.Elem {
	v := rg.Signed(rg.MulConst(c, z))
	return rg.FromSigned(v >> t) // arithmetic shift = floor division
}
