package core

import (
	"bytes"
	"sync"
	"testing"

	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

// recorder captures every byte a party sends, for transcript-determinism
// regression tests.
type recorder struct {
	transport.Conn
	mu  sync.Mutex
	log bytes.Buffer
}

func (r *recorder) Send(msg []byte) error {
	r.mu.Lock()
	r.log.Write(msg)
	r.mu.Unlock()
	return r.Conn.Send(msg)
}

func (r *recorder) transcript() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]byte{}, r.log.Bytes()...)
}

// With fixed seeds on BOTH parties, the whole protocol transcript must be
// byte-identical across runs — the property every benchmark and recorded
// experiment in this repo relies on.
func TestTranscriptDeterminism(t *testing.T) {
	run := func() ([]byte, []byte) {
		p := Params{Ring: ring.New(32), Scheme: quant.Uniform(2, 2)}
		ca, cb := transport.Pipe()
		defer ca.Close()
		rca := &recorder{Conn: ca}
		rcb := &recorder{Conn: cb}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			ct, err := NewClientTriplets(rca, p, 1, prg.New(prg.SeedFromInt(101)))
			if err != nil {
				t.Error(err)
				return
			}
			R := prg.New(prg.SeedFromInt(102)).Mat(p.Ring, 6, 1)
			if _, err := ct.GenerateClient(MatShape{M: 4, N: 6, O: 1}, R, OneBatch); err != nil {
				t.Error(err)
			}
		}()
		// The server's OT-receiver setup uses an OS-seeded PRG internally
		// (NewServerTriplets), which would break determinism of ITS
		// transcript — but the client's transcript must still be
		// deterministic because nothing the server sends influences the
		// client's payload bytes... except the base-OT B points do (they
		// key the pads). So pin the server randomness too by using the
		// lower-level constructor path.
		st, err := NewServerTripletsSeeded(rcb, p, 1, prg.New(prg.SeedFromInt(103)))
		if err != nil {
			t.Fatal(err)
		}
		W := []int64{1, -2, 0, 3, -1, 2, 1, 0, -2, 3, 1, -1, 0, 2, -2, 1, 3, 0, 1, -1, 2, 0, -2, 1}
		if _, err := st.GenerateServer(MatShape{M: 4, N: 6, O: 1}, W, OneBatch); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		return rca.transcript(), rcb.transcript()
	}
	c1, s1 := run()
	c2, s2 := run()
	if !bytes.Equal(c1, c2) {
		t.Error("client transcript differs across identical seeded runs")
	}
	if !bytes.Equal(s1, s2) {
		t.Error("server transcript differs across identical seeded runs")
	}
	if len(c1) == 0 || len(s1) == 0 {
		t.Error("empty transcripts recorded")
	}
}
