package core

import (
	"fmt"

	"abnn2/internal/gc"
	"abnn2/internal/ring"
)

// Square activation: Algorithm 2 with f(y) = y^2 mod 2^l, the activation
// CryptoNets-style networks use when comparisons are too expensive for
// the underlying cryptosystem. Included to demonstrate that the paper's
// generic non-linear protocol (Algorithm 2, our BatchFuncCircuit)
// supports arbitrary activations — and to quantify why ABNN2 is right to
// keep multiplications out of GC: a squarer costs ~2*l^2 AND gates per
// neuron against ReLU's ~3*l.

// squareChunk bounds neurons per squaring circuit (each neuron is l^2
// scale, so chunks are much smaller than ReLU's).
const squareChunk = 256

// SquareClient runs the client (garbler) side of z = y^2 - z1 resharing.
func (c *ClientNonlinear) SquareClient(y1, z1 ring.Vec) error {
	if len(y1) != len(z1) {
		return fmt.Errorf("core: square share length mismatch %d vs %d", len(y1), len(z1))
	}
	bits := c.rg.Bits()
	for start := 0; start < len(y1); start += squareChunk {
		end := start + squareChunk
		if end > len(y1) {
			end = len(y1)
		}
		n := end - start
		circ := c.cache.square(cacheKey{bits, n})
		in := append(gc.VecToBits(y1[start:end], bits), gc.VecToBits(z1[start:end], bits)...)
		if err := c.garb.Run(circ, in); err != nil {
			return fmt.Errorf("core: square garble: %w", err)
		}
	}
	return nil
}

// SquareServer runs the server (evaluator) side, returning its shares of
// the squared activations.
func (s *ServerNonlinear) SquareServer(y0 ring.Vec) (ring.Vec, error) {
	bits := s.rg.Bits()
	z0 := make(ring.Vec, 0, len(y0))
	for start := 0; start < len(y0); start += squareChunk {
		end := start + squareChunk
		if end > len(y0) {
			end = len(y0)
		}
		n := end - start
		circ := s.cache.square(cacheKey{bits, n})
		out, err := s.eval.Run(circ, gc.VecToBits(y0[start:end], bits))
		if err != nil {
			return nil, fmt.Errorf("core: square evaluate: %w", err)
		}
		z0 = append(z0, gc.BitsToVec(out, bits, n)...)
	}
	return z0, nil
}

func (cc *circuitCache) square(k cacheKey) *gc.Circuit {
	if cc.squares == nil {
		cc.squares = make(map[cacheKey]*gc.Circuit)
	}
	if c, ok := cc.squares[k]; ok {
		return c
	}
	c := gc.BatchFuncCircuit(k.bits, k.n, func(b *gc.Builder, y []int) []int {
		return b.MulMod(y, y)
	})
	cc.squares[k] = c
	return c
}
