package core

import (
	"math"
	"testing"

	"abnn2/internal/quant"
)

// Table 1's closed forms against hand-computed values.

func TestSecureMLComplexityKnown(t *testing.T) {
	// l=64, 128x1000 x 1000x1: #OT = 64*65/128 * 128000 = 4,160,000;
	// comm = 128000*64*65*(1+2) bits.
	c := SecureMLComplexity(64, MatShape{M: 128, N: 1000, O: 1})
	if c.NumOTs != 4160000 {
		t.Errorf("#OT = %d, want 4160000", c.NumOTs)
	}
	wantBits := 128000.0 * 64 * 65 * 3
	if c.CommBits != wantBits {
		t.Errorf("comm = %v bits, want %v", c.CommBits, wantBits)
	}
}

func TestOneBatchComplexityKnown(t *testing.T) {
	// 8(2,2,2,2), l=32, m*n = 100: per fragment N=4:
	// 100 * (32*3 + 256) = 35200 bits; gamma=4 -> 140800 bits, 400 OTs.
	c := OneBatchComplexity(32, quant.Uniform(2, 4), MatShape{M: 10, N: 10, O: 1})
	if c.NumOTs != 400 {
		t.Errorf("#OT = %d, want 400", c.NumOTs)
	}
	if c.CommBits != 140800 {
		t.Errorf("comm = %v bits, want 140800", c.CommBits)
	}
}

func TestMultiBatchComplexityKnown(t *testing.T) {
	// ternary (N=3, gamma=1), l=32, o=4, m*n=100:
	// 100 * (4*32*3 + 256) = 100 * 640 = 64000 bits, 100 OTs.
	c := MultiBatchComplexity(32, quant.Ternary(), MatShape{M: 10, N: 10, O: 4})
	if c.NumOTs != 100 {
		t.Errorf("#OT = %d, want 100", c.NumOTs)
	}
	if c.CommBits != 64000 {
		t.Errorf("comm = %v bits, want 64000", c.CommBits)
	}
}

func TestOfflineComplexitySelectsMode(t *testing.T) {
	sch := quant.Binary()
	one := OfflineComplexity(32, sch, MatShape{M: 2, N: 2, O: 1})
	multi := OfflineComplexity(32, sch, MatShape{M: 2, N: 2, O: 2})
	if one.CommBits >= multi.CommBits {
		t.Errorf("one-batch (%v) should be below multi-batch o=2 (%v)", one.CommBits, multi.CommBits)
	}
}

// The paper's Table 2 batch-1 values in MiB, reproduced from the formula
// over the Figure 4 network (l=32).
func TestTable2Formula(t *testing.T) {
	shapes := []MatShape{{M: 128, N: 784, O: 1}, {M: 128, N: 128, O: 1}, {M: 10, N: 128, O: 1}}
	cases := []struct {
		scheme quant.Scheme
		wantMB float64 // paper Table 2, batch 1
	}{
		{quant.OneBit(8, true), 32.42},
		{quant.NewBitScheme(true, 3, 3, 2), 18.47},
		{quant.NewBitScheme(true, 4, 4), 20.72},
		{quant.Ternary(), 4.51},
		{quant.Binary(), 4.06},
	}
	for _, c := range cases {
		var bits float64
		for _, sh := range shapes {
			bits += OneBatchComplexity(32, c.scheme, sh).CommBits
		}
		mb := bits / 8 / (1 << 20)
		if math.Abs(mb-c.wantMB) > 0.35 {
			t.Errorf("%s: formula %.2f MB, paper %.2f MB", c.scheme.Name(), mb, c.wantMB)
		}
	}
}
