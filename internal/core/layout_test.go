package core

import (
	"testing"

	"abnn2/internal/nn"
	"abnn2/internal/ring"
)

// Direct tests of the engine's layout helpers (covered indirectly by the
// end-to-end tests, but the index arithmetic deserves pointed checks).

func TestFoldBatch(t *testing.T) {
	// Y: 2 x (2 samples * 3 positions); sample k occupies cols [k*3,(k+1)*3).
	y := &ring.Mat{Rows: 2, Cols: 6, Data: ring.Vec{
		// row 0: s0(p0,p1,p2), s1(p0,p1,p2)
		1, 2, 3, 10, 20, 30,
		// row 1
		4, 5, 6, 40, 50, 60,
	}}
	f := foldBatch(y, 2)
	if f.Rows != 6 || f.Cols != 2 {
		t.Fatalf("folded shape %dx%d", f.Rows, f.Cols)
	}
	// Feature (o=1, p=2) of sample 1 = Y[1][1*3+2] = 60.
	if f.At(1*3+2, 1) != 60 {
		t.Fatalf("fold misplaced: %v", f.Data)
	}
	if f.At(0, 0) != 1 || f.At(5, 0) != 6 || f.At(3, 1) != 40 {
		t.Fatalf("fold wrong: %v", f.Data)
	}
	// P = 1 passthrough.
	same := &ring.Mat{Rows: 2, Cols: 3, Data: ring.Vec{1, 2, 3, 4, 5, 6}}
	if foldBatch(same, 3) != same {
		t.Fatal("P=1 fold should be identity")
	}
}

func TestShareColsConv(t *testing.T) {
	conv := &nn.ConvSpec{Ci: 1, H: 2, W: 2, Kh: 2, Kw: 2, Stride: 1, Pad: 0}
	l := LayerSpec{In: 4, Out: 1, Conv: conv}
	// Two samples, features [a b c d] per sample.
	share := &ring.Mat{Rows: 4, Cols: 2, Data: ring.Vec{
		1, 5,
		2, 6,
		3, 7,
		4, 8,
	}}
	out := shareCols(l, share)
	// n = 4, P = 1: out is 4 x 2 with sample-major columns.
	if out.Rows != 4 || out.Cols != 2 {
		t.Fatalf("shape %dx%d", out.Rows, out.Cols)
	}
	for r := 0; r < 4; r++ {
		if out.At(r, 0) != ring.Elem(r+1) || out.At(r, 1) != ring.Elem(r+5) {
			t.Fatalf("col expansion wrong at row %d: %v", r, out.Data)
		}
	}
	// FC passthrough.
	fc := LayerSpec{In: 4, Out: 2}
	if shareCols(fc, share) != share {
		t.Fatal("FC shareCols should be identity")
	}
}

func TestPoolWindowsFlat(t *testing.T) {
	conv := &nn.ConvSpec{Ci: 1, H: 5, W: 5, Kh: 2, Kw: 2, Stride: 1, Pad: 1} // out 4x4... check: (5+2-2)/1+1=6? No: (5+2*1-2)/1+1 = 6.
	_ = conv
	spec := LayerSpec{
		In: 16, Out: 1,
		Conv: &nn.ConvSpec{Ci: 1, H: 5, W: 5, Kh: 2, Kw: 2, Stride: 1, Pad: 0}, // out 4x4
		Pool: &nn.PoolSpec{K: 2},
	}
	batch := 2
	wins := poolWindowsFlat(spec, batch)
	// 1 channel, 4x4 grid, 2x2 pool -> 4 windows per sample * 2 samples.
	if len(wins) != 8 {
		t.Fatalf("window count %d", len(wins))
	}
	// Window 0 = per-sample window 0, sample 0: per-sample indices
	// {0,1,4,5} mapped to flat r*batch + 0.
	want0 := []int{0, 2, 8, 10}
	for i, idx := range wins[0] {
		if idx != want0[i] {
			t.Fatalf("window 0 = %v, want %v", wins[0], want0)
		}
	}
	// Window 1 = same per-sample window, sample 1: +1 on each.
	for i, idx := range wins[1] {
		if idx != want0[i]+1 {
			t.Fatalf("window 1 = %v", wins[1])
		}
	}
	// Every flat index [0, 16*2) appears exactly once.
	seen := map[int]bool{}
	for _, w := range wins {
		for _, idx := range w {
			if seen[idx] {
				t.Fatalf("index %d duplicated", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != 32 {
		t.Fatalf("covered %d of 32 inputs", len(seen))
	}
}

func TestSampleMajor(t *testing.T) {
	m := &ring.Mat{Rows: 2, Cols: 3, Data: ring.Vec{
		1, 2, 3, // feature 0 across samples
		4, 5, 6, // feature 1
	}}
	got := sampleMajor(m)
	want := ring.Vec{1, 4, 2, 5, 3, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sampleMajor = %v, want %v", got, want)
		}
	}
}
