// Package sharing implements two-party additive secret sharing over
// Z_{2^l} (paper section 2.3, "Arithmetic sharing"): a value x is split
// into shares x0 = r, x1 = x - r for uniform r, so that x0 + x1 = x
// mod 2^l and either share alone is uniformly distributed.
package sharing

import (
	"abnn2/internal/prg"
	"abnn2/internal/ring"
)

// Share splits x into two additive shares using randomness from rng.
// The first share is uniform; the second is x minus it.
func Share(r ring.Ring, x ring.Elem, rng *prg.PRG) (s0, s1 ring.Elem) {
	s0 = rng.Elem(r)
	s1 = r.Sub(x, s0)
	return s0, s1
}

// Reconstruct recovers x from its two shares.
func Reconstruct(r ring.Ring, s0, s1 ring.Elem) ring.Elem {
	return r.Add(s0, s1)
}

// ShareVec splits every element of x.
func ShareVec(r ring.Ring, x ring.Vec, rng *prg.PRG) (s0, s1 ring.Vec) {
	s0 = rng.Vec(r, len(x))
	s1 = r.SubVec(x, s0)
	return s0, s1
}

// ReconstructVec recovers a vector from its share vectors.
func ReconstructVec(r ring.Ring, s0, s1 ring.Vec) ring.Vec {
	return r.AddVec(s0, s1)
}

// ShareMat splits every element of m.
func ShareMat(r ring.Ring, m *ring.Mat, rng *prg.PRG) (s0, s1 *ring.Mat) {
	s0 = rng.Mat(r, m.Rows, m.Cols)
	s1 = &ring.Mat{Rows: m.Rows, Cols: m.Cols, Data: r.SubVec(m.Data, s0.Data)}
	return s0, s1
}

// ReconstructMat recovers a matrix from its share matrices.
func ReconstructMat(r ring.Ring, s0, s1 *ring.Mat) *ring.Mat {
	return r.AddMat(s0, s1)
}
