package sharing

import (
	"testing"
	"testing/quick"

	"abnn2/internal/prg"
	"abnn2/internal/ring"
)

func TestShareReconstruct(t *testing.T) {
	r := ring.New(32)
	rng := prg.New(prg.SeedFromInt(1))
	for i := 0; i < 100; i++ {
		x := rng.Elem(r)
		s0, s1 := Share(r, x, rng)
		if Reconstruct(r, s0, s1) != x {
			t.Fatalf("reconstruct failed for %d", x)
		}
	}
}

// Property: for every value, shares reconstruct; and the first share is
// exactly the PRG stream (uniform by construction).
func TestShareProperty(t *testing.T) {
	r := ring.New(24)
	rng := prg.New(prg.SeedFromInt(2))
	f := func(x uint64) bool {
		x = r.Reduce(x)
		s0, s1 := Share(r, x, rng)
		return Reconstruct(r, s0, s1) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShareVecAndMat(t *testing.T) {
	r := ring.New(16)
	rng := prg.New(prg.SeedFromInt(3))
	x := rng.Vec(r, 20)
	s0, s1 := ShareVec(r, x, rng)
	if !r.EqualVec(ReconstructVec(r, s0, s1), x) {
		t.Fatal("vector reconstruct failed")
	}
	m := rng.Mat(r, 4, 5)
	m0, m1 := ShareMat(r, m, rng)
	if !r.EqualMat(ReconstructMat(r, m0, m1), m) {
		t.Fatal("matrix reconstruct failed")
	}
}

// Shares of the same value under different randomness must differ (they
// are uniform); this catches accidental deterministic sharing.
func TestSharesVary(t *testing.T) {
	r := ring.New(32)
	rng := prg.New(prg.SeedFromInt(4))
	x := ring.Elem(12345)
	a0, _ := Share(r, x, rng)
	b0, _ := Share(r, x, rng)
	if a0 == b0 {
		t.Error("two sharings produced identical first shares (possible but vanishingly unlikely)")
	}
}
