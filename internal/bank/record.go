package bank

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"

	"abnn2/internal/core"
	"abnn2/internal/ring"
)

// On-disk record formats of the durable bank store. Everything here is
// parsed defensively: a store directory may be shared between operators,
// restored from backup, or tampered with, so every decoder is
// length-checked, bounded, and returns errors instead of panicking (the
// fuzz targets in fuzz_test.go hold it to that).
//
// Segment file:
//
//	"ABNN2SG1" | u16 scopeLen | scope string      (header)
//	u32 payloadLen | u32 crc32c(payload) | payload ...   (records)
//	payload := u64 correlation id | corr blob
//
// Claim journal (one per store, shared by all pools):
//
//	"ABNN2JN1"                                    (header)
//	u64 scopeHash | u64 id | u32 crc32c(first 16) ...    (20-byte entries)
//
// Correlation blob (self-describing, tag first):
//
//	'S' | u32 batch | u32 n | n x mat             server half
//	'C' | u32 batch | mat R0 | u32 n | n x mat V | u32 n | n x (u8 present [mat]) Z1
//	'P' | u32 serverLen | server blob | client blob      dealer pair
//	mat := u32 rows | u32 cols | rows*cols x u64
//
// All integers little-endian. Ring elements are stored as full 8-byte
// words (they are already reduced; the wire format's l-bit truncation is
// a bandwidth optimization the disk does not need).

var (
	segmentMagic = []byte("ABNN2SG1")
	journalMagic = []byte("ABNN2JN1")
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms this serves from.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// journalEntrySize is the fixed size of one claim-journal entry, chosen
// so torn tails are detectable by length alone.
const journalEntrySize = 20

// maxRecordBytes bounds one segment record's payload. A correlation for
// even an ImageNet-scale layer stack stays far below this; anything
// larger is a corrupt or hostile length field, rejected before
// allocation.
const maxRecordBytes = 1 << 28

// maxMatDim bounds a decoded matrix dimension, mirroring the session
// layer's batch bound: shapes beyond it cannot come from a real model.
const maxMatDim = 1 << 21

// Correlation blob tags.
const (
	KindServerHalf byte = 'S'
	KindClientHalf byte = 'C'
	KindPair       byte = 'P'
)

// PeerID is a party's durable 128-bit identity, generated randomly on
// first store open and persisted alongside the pools. Peer-paired
// correlations are keyed by it: a server stores its halves under the
// client's ID, a client under the server's. IDs must be unguessable —
// knowing a peer's ID (plus its correlation IDs) is what authorizes
// spending that peer's precomputed pairs; see SECURITY.md.
type PeerID [16]byte

// NoPeer is the zero PeerID, marking dealer pools (in-process trusted
// dealer, no remote pairing).
var NoPeer PeerID

// String renders the ID as 32 hex digits.
func (p PeerID) String() string { return hex.EncodeToString(p[:]) }

// ParsePeerID parses the hex form produced by String.
func ParsePeerID(s string) (PeerID, error) {
	var p PeerID
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(p) {
		return p, fmt.Errorf("bank: malformed peer id %q", s)
	}
	copy(p[:], b)
	return p, nil
}

// Scope identifies one durable pool: the correlation key plus the peer
// the pairs are bound to (NoPeer for dealer pools).
type Scope struct {
	Peer PeerID
	Key  Key
}

// String is the canonical scope encoding: the segment header line, the
// KEY file contents, and the input to the journal's scope hash. Round-
// trips through ParseScope.
func (s Scope) String() string {
	return fmt.Sprintf("v1 peer=%s model=%s scheme=%s l=%d batch=%d backend=%s",
		s.Peer, s.Key.Model, s.Key.Scheme, s.Key.RingBits, s.Key.Batch, s.Key.Backend)
}

// valid rejects scopes whose canonical encoding would not round-trip
// (embedded whitespace) or whose key fields are out of protocol range.
func (s Scope) valid() error {
	for _, f := range []string{s.Key.Model, s.Key.Scheme, s.Key.Backend} {
		if f == "" || strings.ContainsAny(f, " \n\t") {
			return fmt.Errorf("bank: scope field %q is empty or contains whitespace", f)
		}
	}
	if s.Key.RingBits < 8 || s.Key.RingBits > 64 {
		return fmt.Errorf("bank: scope ring width %d out of range", s.Key.RingBits)
	}
	if s.Key.Batch <= 0 || s.Key.Batch > 1<<20 {
		return fmt.Errorf("bank: scope batch %d out of range", s.Key.Batch)
	}
	return nil
}

// ParseScope decodes the canonical form. It accepts exactly what String
// produces; recovery treats anything else as a corrupt pool directory.
func ParseScope(s string) (Scope, error) {
	var sc Scope
	fields := strings.Split(s, " ")
	if len(fields) != 7 || fields[0] != "v1" {
		return sc, fmt.Errorf("bank: malformed scope %q", s)
	}
	want := []string{"peer", "model", "scheme", "l", "batch", "backend"}
	vals := make(map[string]string, len(want))
	for i, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok || k != want[i] || v == "" {
			return sc, fmt.Errorf("bank: malformed scope field %q", f)
		}
		vals[k] = v
	}
	peer, err := ParsePeerID(vals["peer"])
	if err != nil {
		return sc, err
	}
	l, err := strconv.ParseUint(vals["l"], 10, 8)
	if err != nil {
		return sc, fmt.Errorf("bank: malformed scope ring width: %w", err)
	}
	batch, err := strconv.Atoi(vals["batch"])
	if err != nil {
		return sc, fmt.Errorf("bank: malformed scope batch: %w", err)
	}
	sc = Scope{Peer: peer, Key: Key{
		Model: vals["model"], Scheme: vals["scheme"],
		RingBits: uint(l), Batch: batch, Backend: vals["backend"],
	}}
	if err := sc.valid(); err != nil {
		return sc, err
	}
	return sc, nil
}

// hash returns the scope's 64-bit journal identity (a digest truncation,
// so collisions across distinct pools are negligible).
func (s Scope) hash() uint64 {
	sum := sha256.Sum256([]byte(s.String()))
	return binary.LittleEndian.Uint64(sum[:8])
}

// dirName is the scope's pool directory name: a digest truncation, so
// free-form key fields never meet the filesystem.
func (s Scope) dirName() string {
	sum := sha256.Sum256([]byte(s.String()))
	return hex.EncodeToString(sum[:8])
}

// AppendSegmentHeader appends a segment file header for scope.
func AppendSegmentHeader(dst []byte, scope string) []byte {
	dst = append(dst, segmentMagic...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(scope)))
	return append(dst, scope...)
}

// AppendSegmentRecord appends one framed, checksummed record: id plus a
// correlation blob.
func AppendSegmentRecord(dst []byte, id uint64, blob []byte) []byte {
	payload := make([]byte, 0, 8+len(blob))
	payload = binary.LittleEndian.AppendUint64(payload, id)
	payload = append(payload, blob...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// AppendJournalEntry appends one fixed-size claim entry.
func AppendJournalEntry(dst []byte, scopeHash, id uint64) []byte {
	var e [journalEntrySize]byte
	binary.LittleEndian.PutUint64(e[0:8], scopeHash)
	binary.LittleEndian.PutUint64(e[8:16], id)
	binary.LittleEndian.PutUint32(e[16:20], crc32.Checksum(e[:16], crcTable))
	return append(dst, e[:]...)
}

// segRecord is one parsed segment record.
type segRecord struct {
	id   uint64
	blob []byte
}

// scanSegment parses a whole segment image. It returns the records that
// parse cleanly, the scope line from the header, and how the scan ended:
//
//   - err == nil: every byte accounted for.
//   - errTorn (with keep = the offset of the last clean record boundary):
//     the file ends mid-record — the torn tail of a crashed append.
//     Recovery truncates to keep and trusts everything before it.
//   - any other error: structural corruption (bad magic, checksum
//     mismatch on a complete record, oversized length). Recovery
//     quarantines the whole segment: a checksum failure means the disk or
//     an editor rewrote history, and no later record can be trusted.
func scanSegment(data []byte) (scope string, recs []segRecord, keep int64, err error) {
	if len(data) < len(segmentMagic)+2 {
		if incompleteHeader(data) {
			return "", nil, 0, errTorn
		}
		return "", nil, 0, fmt.Errorf("bank: segment too short for header")
	}
	if string(data[:len(segmentMagic)]) != string(segmentMagic) {
		return "", nil, 0, fmt.Errorf("bank: bad segment magic")
	}
	off := len(segmentMagic)
	scopeLen := int(binary.LittleEndian.Uint16(data[off : off+2]))
	off += 2
	if len(data)-off < scopeLen {
		return "", nil, 0, errTorn // crashed mid-header; nothing to keep
	}
	scope = string(data[off : off+scopeLen])
	off += scopeLen
	for off < len(data) {
		rest := data[off:]
		if len(rest) < 8 {
			return scope, recs, int64(off), errTorn
		}
		plen := int(binary.LittleEndian.Uint32(rest[0:4]))
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if plen < 8 || plen > maxRecordBytes {
			return scope, recs, int64(off), fmt.Errorf("bank: segment record length %d out of range", plen)
		}
		if len(rest)-8 < plen {
			return scope, recs, int64(off), errTorn
		}
		payload := rest[8 : 8+plen]
		if crc32.Checksum(payload, crcTable) != sum {
			return scope, recs, int64(off), fmt.Errorf("bank: segment record checksum mismatch at offset %d", off)
		}
		recs = append(recs, segRecord{
			id:   binary.LittleEndian.Uint64(payload[:8]),
			blob: payload[8:],
		})
		off += 8 + plen
	}
	return scope, recs, int64(off), nil
}

// incompleteHeader reports whether data is a strict prefix of a valid
// header — a crash during the very first write, recoverable by
// truncation to empty rather than quarantine.
func incompleteHeader(data []byte) bool {
	n := len(data)
	if n > len(segmentMagic) {
		n = len(segmentMagic)
	}
	return string(data[:n]) == string(segmentMagic[:n])
}

// errTorn marks a scan that hit a torn tail (see scanSegment).
var errTorn = fmt.Errorf("bank: torn record tail")

// scanJournal parses a claim-journal image into claimed-id sets keyed by
// scope hash. The same ending contract as scanSegment applies: errTorn
// with a keep offset for a crashed append, a hard error for corruption
// that invalidates the whole journal (recovery then fails closed:
// nothing persisted is replayed).
func scanJournal(data []byte) (claims map[uint64]map[uint64]bool, keep int64, err error) {
	claims = make(map[uint64]map[uint64]bool)
	if len(data) < len(journalMagic) {
		if string(data) == string(journalMagic[:len(data)]) {
			return claims, 0, errTorn
		}
		return claims, 0, fmt.Errorf("bank: journal too short for header")
	}
	if string(data[:len(journalMagic)]) != string(journalMagic) {
		return claims, 0, fmt.Errorf("bank: bad journal magic")
	}
	off := len(journalMagic)
	for off < len(data) {
		rest := data[off:]
		if len(rest) < journalEntrySize {
			return claims, int64(off), errTorn
		}
		e := rest[:journalEntrySize]
		if crc32.Checksum(e[:16], crcTable) != binary.LittleEndian.Uint32(e[16:20]) {
			// A bad checksum in the last entry slot is a torn write; one
			// with further entries behind it is corruption.
			if len(rest) == journalEntrySize {
				return claims, int64(off), errTorn
			}
			return claims, int64(off), fmt.Errorf("bank: journal entry checksum mismatch at offset %d", off)
		}
		sh := binary.LittleEndian.Uint64(e[0:8])
		id := binary.LittleEndian.Uint64(e[8:16])
		m := claims[sh]
		if m == nil {
			m = make(map[uint64]bool)
			claims[sh] = m
		}
		m[id] = true
		off += journalEntrySize
	}
	return claims, int64(off), nil
}

// --- correlation blob codec ---

func appendMat(dst []byte, m *ring.Mat) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.Rows))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.Cols))
	for _, x := range m.Data {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(x))
	}
	return dst
}

func decodeMat(src []byte) (*ring.Mat, []byte, error) {
	if len(src) < 8 {
		return nil, nil, fmt.Errorf("bank: short matrix header")
	}
	rows := int(binary.LittleEndian.Uint32(src[0:4]))
	cols := int(binary.LittleEndian.Uint32(src[4:8]))
	src = src[8:]
	if rows < 0 || cols < 0 || rows > maxMatDim || cols > maxMatDim {
		return nil, nil, fmt.Errorf("bank: matrix shape %dx%d out of range", rows, cols)
	}
	need := int64(rows) * int64(cols) * 8
	if int64(len(src)) < need {
		return nil, nil, fmt.Errorf("bank: short matrix body: have %d bytes, want %d", len(src), need)
	}
	m := ring.NewMat(rows, cols)
	for i := range m.Data {
		m.Data[i] = ring.Elem(binary.LittleEndian.Uint64(src[i*8:]))
	}
	return m, src[need:], nil
}

func decodeU32(src []byte) (int, []byte, error) {
	if len(src) < 4 {
		return 0, nil, fmt.Errorf("bank: short length field")
	}
	return int(binary.LittleEndian.Uint32(src[0:4])), src[4:], nil
}

// maxLayers bounds decoded layer counts; the deepest plausible model is
// orders of magnitude below it.
const maxLayers = 1 << 16

// EncodeServerCorr serializes a server correlation half.
func EncodeServerCorr(c *core.ServerCorr) []byte {
	dst := []byte{KindServerHalf}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(c.Batch))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(c.U)))
	for _, u := range c.U {
		dst = appendMat(dst, u)
	}
	return dst
}

// DecodeServerCorr parses a server half; the inverse of EncodeServerCorr.
func DecodeServerCorr(src []byte) (*core.ServerCorr, error) {
	if len(src) == 0 || src[0] != KindServerHalf {
		return nil, fmt.Errorf("bank: not a server correlation blob")
	}
	src = src[1:]
	batch, src, err := decodeU32(src)
	if err != nil {
		return nil, err
	}
	if batch <= 0 || batch > 1<<20 {
		return nil, fmt.Errorf("bank: corr batch %d out of range", batch)
	}
	n, src, err := decodeU32(src)
	if err != nil {
		return nil, err
	}
	if n > maxLayers {
		return nil, fmt.Errorf("bank: corr layer count %d out of range", n)
	}
	c := &core.ServerCorr{Batch: batch, U: make([]*ring.Mat, 0, n)}
	for i := 0; i < n; i++ {
		var m *ring.Mat
		if m, src, err = decodeMat(src); err != nil {
			return nil, fmt.Errorf("bank: server corr layer %d: %w", i, err)
		}
		c.U = append(c.U, m)
	}
	if len(src) != 0 {
		return nil, fmt.Errorf("bank: %d trailing bytes after server corr", len(src))
	}
	return c, nil
}

// EncodeClientCorr serializes a client correlation half.
func EncodeClientCorr(c *core.ClientCorr) []byte {
	dst := []byte{KindClientHalf}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(c.Batch))
	dst = appendMat(dst, c.R0)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(c.V)))
	for _, v := range c.V {
		dst = appendMat(dst, v)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(c.Z1)))
	for _, z := range c.Z1 {
		if z == nil {
			dst = append(dst, 0)
			continue
		}
		dst = append(dst, 1)
		dst = appendMat(dst, z)
	}
	return dst
}

// DecodeClientCorr parses a client half; the inverse of EncodeClientCorr.
func DecodeClientCorr(src []byte) (*core.ClientCorr, error) {
	if len(src) == 0 || src[0] != KindClientHalf {
		return nil, fmt.Errorf("bank: not a client correlation blob")
	}
	src = src[1:]
	batch, src, err := decodeU32(src)
	if err != nil {
		return nil, err
	}
	if batch <= 0 || batch > 1<<20 {
		return nil, fmt.Errorf("bank: corr batch %d out of range", batch)
	}
	c := &core.ClientCorr{Batch: batch}
	if c.R0, src, err = decodeMat(src); err != nil {
		return nil, fmt.Errorf("bank: client corr input mask: %w", err)
	}
	nv, src, err := decodeU32(src)
	if err != nil {
		return nil, err
	}
	if nv > maxLayers {
		return nil, fmt.Errorf("bank: corr layer count %d out of range", nv)
	}
	c.V = make([]*ring.Mat, 0, nv)
	for i := 0; i < nv; i++ {
		var m *ring.Mat
		if m, src, err = decodeMat(src); err != nil {
			return nil, fmt.Errorf("bank: client corr triplet %d: %w", i, err)
		}
		c.V = append(c.V, m)
	}
	nz, src, err := decodeU32(src)
	if err != nil {
		return nil, err
	}
	if nz > maxLayers {
		return nil, fmt.Errorf("bank: corr layer count %d out of range", nz)
	}
	c.Z1 = make([]*ring.Mat, nz)
	for i := 0; i < nz; i++ {
		if len(src) < 1 {
			return nil, fmt.Errorf("bank: client corr share %d: missing presence byte", i)
		}
		present := src[0]
		src = src[1:]
		switch present {
		case 0:
		case 1:
			if c.Z1[i], src, err = decodeMat(src); err != nil {
				return nil, fmt.Errorf("bank: client corr share %d: %w", i, err)
			}
		default:
			return nil, fmt.Errorf("bank: client corr share %d: bad presence byte %d", i, present)
		}
	}
	if len(src) != 0 {
		return nil, fmt.Errorf("bank: %d trailing bytes after client corr", len(src))
	}
	return c, nil
}

// EncodePair serializes a dealer pair (both halves).
func EncodePair(server *core.ServerCorr, client *core.ClientCorr) []byte {
	sb := EncodeServerCorr(server)
	dst := []byte{KindPair}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(sb)))
	dst = append(dst, sb...)
	return append(dst, EncodeClientCorr(client)...)
}

// DecodePair parses a dealer pair; the inverse of EncodePair.
func DecodePair(src []byte) (*core.ServerCorr, *core.ClientCorr, error) {
	if len(src) == 0 || src[0] != KindPair {
		return nil, nil, fmt.Errorf("bank: not a pair blob")
	}
	src = src[1:]
	slen, src, err := decodeU32(src)
	if err != nil {
		return nil, nil, err
	}
	if slen < 0 || slen > len(src) {
		return nil, nil, fmt.Errorf("bank: pair server-half length %d out of range", slen)
	}
	server, err := DecodeServerCorr(src[:slen])
	if err != nil {
		return nil, nil, err
	}
	client, err := DecodeClientCorr(src[slen:])
	if err != nil {
		return nil, nil, err
	}
	return server, client, nil
}

// DecodeCorr dispatches on a blob's tag, for callers (and fuzzers) that
// hold an arbitrary record.
func DecodeCorr(src []byte) (any, error) {
	if len(src) == 0 {
		return nil, fmt.Errorf("bank: empty correlation blob")
	}
	switch src[0] {
	case KindServerHalf:
		return DecodeServerCorr(src)
	case KindClientHalf:
		return DecodeClientCorr(src)
	case KindPair:
		s, c, err := DecodePair(src)
		if err != nil {
			return nil, err
		}
		return Pair{Server: s, Client: c}, nil
	}
	return nil, fmt.Errorf("bank: unknown correlation blob tag %#x", src[0])
}
