package bank

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"
)

// Segment pruning suite: fully-claimed closed segment files are deleted
// at recovery and at Sync (drain), the active segment and any segment
// holding a live record survive, and pruning never touches the claim
// journal — the single-use audit stays clean afterwards.

// segCount counts the scope's on-disk segment files.
func segCount(t *testing.T, dir string, scope Scope) int {
	t.Helper()
	pool := filepath.Join(dir, poolsDir, scope.dirName())
	matches, err := filepath.Glob(filepath.Join(pool, segPrefix+"*"+segSuffix))
	if err != nil {
		t.Fatalf("glob segments: %v", err)
	}
	return len(matches)
}

// fillSegments appends n 48-byte records under a 128-byte segment cap,
// forcing rotation so the ids spread over several segment files in
// append order (Draw is FIFO, so draws claim oldest segments first).
func fillSegments(t *testing.T, s *Store, scope Scope, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		if err := s.Append(scope, uint64(i), bytes.Repeat([]byte{byte(i)}, 48)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStorePruneAtSync(t *testing.T) {
	var mu sync.Mutex
	pruned := 0
	obs := observerFunc(func(ev Event) {
		if ev.Kind == "persist-prune" {
			mu.Lock()
			pruned++
			mu.Unlock()
		}
	})
	dir := t.TempDir()
	scope := testScope(NoPeer)
	s, _ := openRecovered(t, dir, StoreOptions{SegmentMaxBytes: 128, Observer: obs})
	defer s.Close()
	fillSegments(t, s, scope, 6)
	before := segCount(t, dir, scope)
	if before < 2 {
		t.Fatalf("%d segment files, want >= 2 (rotation did not trigger)", before)
	}

	// Claim everything: every closed segment is now dead weight; only
	// the active segment may remain after the drain prune.
	for i := 0; i < 6; i++ {
		if _, _, ok, err := s.Draw(scope); err != nil || !ok {
			t.Fatalf("draw %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Every closed fully-claimed segment dies; at most a still-open
	// active segment survives (the tight cap rotates — closes — most
	// segments right at append time).
	after := segCount(t, dir, scope)
	if after > 1 {
		t.Fatalf("%d segment files after drain prune, want <= 1", after)
	}
	mu.Lock()
	got := pruned
	mu.Unlock()
	if got != before-after {
		t.Errorf("observed %d persist-prune events, want %d", got, before-after)
	}

	// Pruning removes segments, never journal entries: the single-use
	// audit must stay clean.
	s.Close()
	res, err := AuditJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dupes) != 0 {
		t.Fatalf("audit found %d double spends after pruning", len(res.Dupes))
	}
}

func TestStorePruneKeepsLiveSegments(t *testing.T) {
	dir := t.TempDir()
	scope := testScope(NoPeer)
	s, _ := openRecovered(t, dir, StoreOptions{SegmentMaxBytes: 128})
	defer s.Close()
	fillSegments(t, s, scope, 6)
	before := segCount(t, dir, scope)

	// Draw only the oldest records: at most the head segments die, and
	// any segment still holding a live record must survive the prune.
	if _, _, ok, err := s.Draw(scope); err != nil || !ok {
		t.Fatalf("draw: ok=%v err=%v", ok, err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	after := segCount(t, dir, scope)
	if after < 1 || after > before {
		t.Fatalf("segment count went %d -> %d", before, after)
	}
	if got := s.Depth(scope); got != 5 {
		t.Fatalf("depth after partial claim = %d, want 5", got)
	}
}

func TestStorePruneAtRecovery(t *testing.T) {
	dir := t.TempDir()
	scope := testScope(NoPeer)
	s1, _ := openRecovered(t, dir, StoreOptions{SegmentMaxBytes: 128})
	fillSegments(t, s1, scope, 6)
	// Claim four: the oldest segments become fully claimed, the tail
	// keeps live records.
	for i := 0; i < 4; i++ {
		if _, _, ok, err := s1.Draw(scope); err != nil || !ok {
			t.Fatalf("draw %d: ok=%v err=%v", i, ok, err)
		}
	}
	before := segCount(t, dir, scope)
	s1.Close()

	s2, stats := openRecovered(t, dir, StoreOptions{})
	defer s2.Close()
	if stats.Pruned < 1 {
		t.Fatalf("recovery pruned %d segments, want >= 1", stats.Pruned)
	}
	if after := segCount(t, dir, scope); after != before-stats.Pruned {
		t.Fatalf("segment count %d -> %d with %d pruned", before, after, stats.Pruned)
	}
	if stats.Records != 2 {
		t.Fatalf("recovered %d records, want 2", stats.Records)
	}
	// The surviving records are still drawable and still single-use.
	for i := 0; i < 2; i++ {
		if _, _, ok, err := s2.Draw(scope); err != nil || !ok {
			t.Fatalf("post-recovery draw %d: ok=%v err=%v", i, ok, err)
		}
	}
	if _, _, ok, _ := s2.Draw(scope); ok {
		t.Fatal("drew more records than were ever appended")
	}
}

// TestStorePruneFullyClaimedStore: when every record is claimed before a
// restart, recovery deletes all segment files, and a fresh append starts
// a new segment cleanly.
func TestStorePruneFullyClaimedStore(t *testing.T) {
	dir := t.TempDir()
	scope := testScope(NoPeer)
	s1, _ := openRecovered(t, dir, StoreOptions{SegmentMaxBytes: 128})
	fillSegments(t, s1, scope, 4)
	for i := 0; i < 4; i++ {
		if _, _, ok, err := s1.Draw(scope); err != nil || !ok {
			t.Fatalf("draw %d: ok=%v err=%v", i, ok, err)
		}
	}
	s1.Close()

	s2, stats := openRecovered(t, dir, StoreOptions{})
	defer s2.Close()
	if stats.Records != 0 {
		t.Fatalf("recovered %d records, want 0", stats.Records)
	}
	if n := segCount(t, dir, scope); n != 0 {
		t.Fatalf("%d segment files survived a fully-claimed recovery, want 0", n)
	}
	if err := s2.Append(scope, 100, []byte{1}); err != nil {
		t.Fatalf("append after full prune: %v", err)
	}
	if id, _, ok, err := s2.Draw(scope); err != nil || !ok || id != 100 {
		t.Fatalf("draw after full prune: id=%d ok=%v err=%v", id, ok, err)
	}
}
