package bank

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"
)

// ReplenishFunc runs one replenishment session against the remote peer:
// generate up to n correlations for key and store both parties' halves
// (the abnn2 facade's ReplenishSession dials the server and drives the
// wire protocol). It returns how many correlations actually landed —
// fewer than n is fine (the server may be at capacity) — and an error
// only for failures worth backing off on (link down, handshake
// rejected, protocol failure).
type ReplenishFunc func(ctx context.Context, key Key, n int) (int, error)

// ReplenishOptions configures a Replenisher.
type ReplenishOptions struct {
	// Bank supplies depth introspection and the observer. Required.
	Bank *Bank
	// Peer identifies the remote party whose paired pools are maintained.
	Peer PeerID
	// Keys are the pools to keep warm.
	Keys []Key
	// Low is the refill watermark: a pool at or below it triggers a
	// replenishment session. Default Bank's low watermark.
	Low int
	// Target is the fill target per pool. Default Bank's capacity.
	Target int
	// Interval is the watermark poll cadence. Default 500ms.
	Interval time.Duration
	// MinBackoff/MaxBackoff bound the jittered exponential backoff after
	// a failed replenishment. Defaults 100ms and 30s.
	MinBackoff, MaxBackoff time.Duration
	// Run performs one replenishment session. Required.
	Run ReplenishFunc
}

func (o ReplenishOptions) low() int {
	if o.Low > 0 {
		return o.Low
	}
	return o.Bank.opts.low()
}

func (o ReplenishOptions) target() int {
	if o.Target > 0 {
		return o.Target
	}
	return o.Bank.opts.capacity()
}

func (o ReplenishOptions) interval() time.Duration {
	if o.Interval > 0 {
		return o.Interval
	}
	return 500 * time.Millisecond
}

func (o ReplenishOptions) minBackoff() time.Duration {
	if o.MinBackoff > 0 {
		return o.MinBackoff
	}
	return 100 * time.Millisecond
}

func (o ReplenishOptions) maxBackoff() time.Duration {
	if o.MaxBackoff > 0 {
		return o.MaxBackoff
	}
	return 30 * time.Second
}

// Replenisher keeps a set of peer-paired pools above their low watermark
// by running remote offline sessions in the background: low-watermark
// polling, jittered exponential backoff on transient failures, and a
// Kick hook for draw-miss triggers. One goroutine serves all keys —
// replenishment is offline-phase heavy, so sessions are sequential by
// design.
type Replenisher struct {
	opts   ReplenishOptions
	ctx    context.Context
	cancel context.CancelFunc
	kick   chan struct{}
	wg     sync.WaitGroup

	mu      sync.Mutex
	backoff time.Duration // 0 = healthy
}

// NewReplenisher validates options and returns a stopped replenisher;
// call Start to begin and Close to stop.
func NewReplenisher(opts ReplenishOptions) (*Replenisher, error) {
	if opts.Bank == nil {
		return nil, fmt.Errorf("bank: replenisher requires a Bank")
	}
	if opts.Run == nil {
		return nil, fmt.Errorf("bank: replenisher requires a Run func")
	}
	if len(opts.Keys) == 0 {
		return nil, fmt.Errorf("bank: replenisher requires at least one pool key")
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Replenisher{opts: opts, ctx: ctx, cancel: cancel, kick: make(chan struct{}, 1)}, nil
}

// Start launches the background loop. Call once.
func (r *Replenisher) Start() {
	r.wg.Add(1)
	go r.loop()
}

// Kick requests an immediate watermark check (e.g. after a draw miss),
// bypassing the poll interval. Never blocks.
func (r *Replenisher) Kick() {
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// Backoff reports the current failure backoff (0 when healthy).
func (r *Replenisher) Backoff() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.backoff
}

// Close stops the loop and waits for any in-flight replenishment session
// to notice the cancelled context and return. Safe to call more than
// once.
func (r *Replenisher) Close() {
	r.cancel()
	r.wg.Wait()
}

func (r *Replenisher) loop() {
	defer r.wg.Done()
	t := time.NewTicker(r.opts.interval())
	defer t.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-t.C:
		case <-r.kick:
		}
		r.sweep()
	}
}

// sweep replenishes every key below the watermark. A failure backs off
// before the next key is attempted (one flaky link should not turn into
// a hammering loop across pools); success resets the backoff.
func (r *Replenisher) sweep() {
	b := r.opts.Bank
	for _, key := range r.opts.Keys {
		if r.ctx.Err() != nil {
			return
		}
		depth := b.PeerDepth(r.opts.Peer, key)
		if depth > r.opts.low() {
			continue
		}
		want := r.opts.target() - depth
		if want <= 0 {
			continue
		}
		got, err := r.opts.Run(r.ctx, key, want)
		if err != nil {
			b.observe(Event{Kind: "replenish-retry", Key: key, Err: err})
			r.backOff(key)
			continue
		}
		r.setBackoff(0)
		b.observe(Event{Kind: "replenish-backoff", Key: key, Depth: 0})
		if got > 0 {
			b.observe(Event{Kind: "replenish-round", Key: key, Depth: b.PeerDepth(r.opts.Peer, key)})
		}
	}
}

// backOff doubles (capped, jittered over [d/2, 3d/2)) and sleeps,
// interruptible by Close.
func (r *Replenisher) backOff(key Key) {
	r.mu.Lock()
	if r.backoff == 0 {
		r.backoff = r.opts.minBackoff()
	} else {
		r.backoff *= 2
		if max := r.opts.maxBackoff(); r.backoff > max {
			r.backoff = max
		}
	}
	d := r.backoff
	r.mu.Unlock()
	r.opts.Bank.observe(Event{Kind: "replenish-backoff", Key: key, Depth: int(d.Milliseconds())})
	wait := d/2 + rand.N(d)
	select {
	case <-r.ctx.Done():
	case <-time.After(wait):
	}
}

func (r *Replenisher) setBackoff(d time.Duration) {
	r.mu.Lock()
	r.backoff = d
	r.mu.Unlock()
}
