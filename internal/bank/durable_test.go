package bank

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"abnn2/internal/core"
)

// Durable-bank integration suite: the bank over a real store — persist
// on generation, claim-before-use on Acquire, Restore after restart,
// peer-paired pools, and the background replenisher's watermark/backoff
// machinery.

// durableBank builds a bank over a recovered store on dir, registering
// the test model, and returns bank, store, and the batch-2 session key.
func durableBank(t *testing.T, dir string, opts Options) (*Bank, *Store, Key) {
	t.Helper()
	st, _ := openRecovered(t, dir, StoreOptions{})
	opts.Store = st
	if opts.Seed == 0 {
		opts.Seed = 0xD0
	}
	b := New(opts)
	key := sessionKey(t, b, testModel(t), 2)
	return b, st, key
}

// TestBankPersistRestoreCycle: generated pairs are persisted, survive a
// restart, Restore puts them back, and a pre-crash Acquire stays spent.
func TestBankPersistRestoreCycle(t *testing.T) {
	dir := t.TempDir()
	b1, st1, key := durableBank(t, dir, Options{Capacity: 3})
	if err := b1.Prewarm(key, 3); err != nil {
		t.Fatalf("prewarm: %v", err)
	}
	scope := Scope{Key: key}
	if d := st1.Depth(scope); d != 3 {
		t.Fatalf("store depth after prewarm = %d, want 3", d)
	}
	// Spend one pair before the "crash": its persisted record must be
	// tombstoned via the claim journal before Acquire returns.
	if _, _, ok := b1.Acquire(key); !ok {
		t.Fatal("acquire missed a warm pool")
	}
	if d := st1.Depth(scope); d != 2 {
		t.Fatalf("store depth after acquire = %d, want 2 (claim-before-use)", d)
	}
	b1.Close() // the store is abandoned un-Closed: crash model

	b2, st2, key2 := durableBank(t, dir, Options{Capacity: 3})
	defer b2.Close()
	defer st2.Close()
	if key2 != key {
		t.Fatalf("pool key changed across restart: %v vs %v", key2, key)
	}
	n, err := b2.Restore()
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if n != 2 {
		t.Fatalf("restored %d pairs, want 2", n)
	}
	if d := b2.Depth(key); d != 2 {
		t.Fatalf("pool depth after restore = %d, want 2", d)
	}
	// Both survivors must acquire and claim cleanly.
	for i := 0; i < 2; i++ {
		id, _, ok := b2.Acquire(key)
		if !ok {
			t.Fatalf("acquire %d after restore missed", i)
		}
		if _, ok := b2.Claim(id, key); !ok {
			t.Fatalf("claim %d after restore missed", i)
		}
	}
}

// TestBankPeerPairedRoundTrip: peer halves land in each party's own
// store — the client half under the server's peer id, the server half
// under the client's — and come back via AcquirePeer/ClaimPeer exactly
// once, including across a restart of both parties.
func TestBankPeerPairedRoundTrip(t *testing.T) {
	cliDir, srvDir := t.TempDir(), t.TempDir()
	cb1, cst1, key := durableBank(t, cliDir, Options{Capacity: 4})
	sb1, sst1, _ := durableBank(t, srvDir, Options{Capacity: 4})
	cliPeer, srvPeer := cst1.PeerID(), sst1.PeerID()

	// Manufacture a genuine pair via the dealer path, then repark it as a
	// peer-paired correlation (the codec round-trip is what matters here;
	// the remote wire protocol is exercised in the root package).
	if err := cb1.Prewarm(key, 1); err != nil {
		t.Fatalf("prewarm: %v", err)
	}
	id, clientHalf, ok := cb1.Acquire(key)
	if !ok {
		t.Fatal("acquire missed")
	}
	serverHalf, ok := cb1.Claim(id, key)
	if !ok {
		t.Fatal("claim missed")
	}
	ccorr, ok1 := clientHalf.(*core.ClientCorr)
	scorr, ok2 := serverHalf.(*core.ServerCorr)
	if !ok1 || !ok2 {
		t.Fatalf("halves are %T / %T", clientHalf, serverHalf)
	}
	cid := NewCorrID()
	if err := cb1.PutPeerClient(srvPeer, key, cid, ccorr); err != nil {
		t.Fatalf("put peer client: %v", err)
	}
	if err := sb1.PutPeerServer(cliPeer, key, cid, scorr); err != nil {
		t.Fatalf("put peer server: %v", err)
	}
	if d := cb1.PeerDepth(srvPeer, key); d != 1 {
		t.Fatalf("client-side peer depth = %d, want 1", d)
	}
	if d := sb1.PeerDepth(cliPeer, key); d != 1 {
		t.Fatalf("server-side peer depth = %d, want 1", d)
	}
	cb1.Close()
	cst1.Close()
	sb1.Close()
	sst1.Close()

	cb2, cst2, _ := durableBank(t, cliDir, Options{Capacity: 4})
	sb2, sst2, _ := durableBank(t, srvDir, Options{Capacity: 4})
	defer cb2.Close()
	defer cst2.Close()
	defer sb2.Close()
	defer sst2.Close()
	gid, gc, ok := cb2.AcquirePeer(srvPeer, key)
	if !ok {
		t.Fatal("peer acquire missed after restart")
	}
	if gid != cid {
		t.Fatalf("peer acquire returned id %d, want %d", gid, cid)
	}
	if gc.Batch != ccorr.Batch || len(gc.V) != len(ccorr.V) {
		t.Fatalf("client corr mangled: batch %d layers %d", gc.Batch, len(gc.V))
	}
	gs, ok := sb2.ClaimPeer(cliPeer, cid, key)
	if !ok {
		t.Fatal("peer claim missed after restart")
	}
	if gs.Batch != scorr.Batch || len(gs.U) != len(scorr.U) {
		t.Fatalf("server corr mangled: batch %d layers %d", gs.Batch, len(gs.U))
	}
	for li := range scorr.U {
		for i := range scorr.U[li].Data {
			if gs.U[li].Data[i] != scorr.U[li].Data[i] {
				t.Fatalf("server U[%d][%d] differs after disk round trip", li, i)
			}
		}
	}
	// Single use: both directions are spent.
	if _, _, ok := cb2.AcquirePeer(srvPeer, key); ok {
		t.Fatal("peer pool served the client half twice")
	}
	if _, ok := sb2.ClaimPeer(cliPeer, cid, key); ok {
		t.Fatal("peer pool served the server half twice")
	}
	// And a different peer sees nothing.
	var other PeerID
	other[7] = 1
	if _, _, ok := cb2.AcquirePeer(other, key); ok {
		t.Fatal("peer pools leaked across peers")
	}
}

// TestReplenisherWatermark: a pool below Low triggers Run with the
// deficit; a healthy pool does not.
func TestReplenisherWatermark(t *testing.T) {
	dir := t.TempDir()
	b, st, key := durableBank(t, dir, Options{Capacity: 4, Low: 2})
	defer b.Close()
	defer st.Close()
	var peer PeerID
	peer[0] = 7

	type call struct {
		key Key
		n   int
	}
	calls := make(chan call, 16)
	r, err := NewReplenisher(ReplenishOptions{
		Bank: b, Peer: peer, Keys: []Key{key},
		Interval: 5 * time.Millisecond,
		Run: func(ctx context.Context, k Key, n int) (int, error) {
			calls <- call{k, n}
			// Pretend n correlations landed by parking real records.
			for i := 0; i < n; i++ {
				id := NewCorrID()
				if err := st.Append(Scope{Peer: peer, Key: k}, id, []byte{1}); err != nil {
					return i, err
				}
			}
			return n, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Close()

	select {
	case c := <-calls:
		if c.key != key || c.n != 4 {
			t.Fatalf("first sweep ran (%v, %d), want (%v, 4)", c.key, c.n, key)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("empty pool below watermark never triggered replenishment")
	}
	// Pool is now at target: no further calls for a while.
	select {
	case c := <-calls:
		t.Fatalf("full pool triggered another replenishment (%v, %d)", c.key, c.n)
	case <-time.After(50 * time.Millisecond):
	}
	if d := b.PeerDepth(peer, key); d != 4 {
		t.Fatalf("peer depth = %d, want 4", d)
	}
}

// TestReplenisherBackoff: consecutive failures grow the backoff
// exponentially (with jitter in [d/2, 3d/2)) and a success resets it.
func TestReplenisherBackoff(t *testing.T) {
	dir := t.TempDir()
	b, st, key := durableBank(t, dir, Options{Capacity: 2})
	defer b.Close()
	defer st.Close()

	var mu sync.Mutex
	fails, succeedAfter := 0, 3
	r, err := NewReplenisher(ReplenishOptions{
		Bank: b, Keys: []Key{key},
		Interval:   time.Millisecond,
		MinBackoff: 2 * time.Millisecond,
		MaxBackoff: 20 * time.Millisecond,
		Run: func(ctx context.Context, k Key, n int) (int, error) {
			mu.Lock()
			defer mu.Unlock()
			fails++
			if fails <= succeedAfter {
				return 0, fmt.Errorf("link down")
			}
			for i := 0; i < n; i++ {
				if err := st.Append(Scope{Key: k}, NewCorrID(), []byte{1}); err != nil {
					return i, err
				}
			}
			return n, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Close()

	deadline := time.Now().Add(10 * time.Second)
	sawBackoff := false
	for time.Now().Before(deadline) {
		if d := r.Backoff(); d > 0 {
			sawBackoff = true
		}
		mu.Lock()
		done := fails > succeedAfter
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !sawBackoff {
		t.Fatal("failures never raised the backoff")
	}
	// After the success the backoff must return to zero (healthy).
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && r.Backoff() != 0 {
		time.Sleep(time.Millisecond)
	}
	if d := r.Backoff(); d != 0 {
		t.Fatalf("backoff %v after a successful round, want 0", d)
	}
}

// TestReplenisherKick: a draw-miss style Kick wakes the loop without
// waiting for the poll interval.
func TestReplenisherKick(t *testing.T) {
	dir := t.TempDir()
	b, st, key := durableBank(t, dir, Options{Capacity: 2})
	defer b.Close()
	defer st.Close()

	ran := make(chan struct{}, 1)
	r, err := NewReplenisher(ReplenishOptions{
		Bank: b, Keys: []Key{key},
		Interval: time.Hour, // only a Kick can wake it
		Run: func(ctx context.Context, k Key, n int) (int, error) {
			select {
			case ran <- struct{}{}:
			default:
			}
			for i := 0; i < n; i++ {
				if err := st.Append(Scope{Key: k}, NewCorrID(), []byte{1}); err != nil {
					return i, err
				}
			}
			return n, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Close()
	r.Kick()
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("Kick did not wake the replenisher")
	}
}

// TestBankStoreFailureDegradesNotBreaks: when the store dies mid-flight
// (simulated by closing it), generation keeps serving memory-only and
// Acquire never hands out a pair whose claim could not be recorded.
func TestBankStoreFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	b, st, key := durableBank(t, dir, Options{Capacity: 2})
	defer b.Close()
	if err := b.Prewarm(key, 2); err != nil {
		t.Fatalf("prewarm: %v", err)
	}
	st.Close() // store gone; claims can no longer be journaled
	// Acquire must not return persisted pairs it cannot tombstone: the
	// persisted entries are dropped, not double-spendable.
	if _, _, ok := b.Acquire(key); ok {
		t.Fatal("acquire handed out a persisted pair after the store died")
	}
}
