package bank

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Offline audit of a store's claim journal: the forensic check behind
// scripts/crashtest.sh. The journal is the ground truth for single-use —
// every claim appends exactly one entry before the correlation is handed
// out, so a (scope, id) pair appearing twice means a correlation was
// spent twice, the one invariant the durable bank must never break even
// across SIGKILL.

// AuditDupe is one double-claimed correlation.
type AuditDupe struct {
	ScopeHash uint64
	ID        uint64
	Count     int
}

// AuditResult summarizes one journal audit.
type AuditResult struct {
	Entries  int  // complete entries scanned
	TornTail bool // journal ends mid-entry (a crashed append; benign)
	Dupes    []AuditDupe
}

// AuditJournal scans the claim journal of the store rooted at dir and
// returns every correlation id claimed more than once. Unlike recovery
// (which collapses entries into a set), the audit preserves
// multiplicity. A torn final entry is reported, not an error; corruption
// ahead of the tail is an error, matching recovery's fail-closed rule.
func AuditJournal(dir string) (AuditResult, error) {
	var res AuditResult
	data, err := os.ReadFile(filepath.Join(dir, journalF))
	if err != nil {
		return res, fmt.Errorf("bank: audit journal: %w", err)
	}
	if len(data) < len(journalMagic) {
		if string(data) == string(journalMagic[:len(data)]) {
			res.TornTail = true
			return res, nil
		}
		return res, fmt.Errorf("bank: audit: journal too short for header")
	}
	if string(data[:len(journalMagic)]) != string(journalMagic) {
		return res, fmt.Errorf("bank: audit: bad journal magic")
	}
	counts := make(map[[2]uint64]int)
	off := len(journalMagic)
	for off < len(data) {
		rest := data[off:]
		if len(rest) < journalEntrySize {
			res.TornTail = true
			break
		}
		e := rest[:journalEntrySize]
		if crc32.Checksum(e[:16], crcTable) != binary.LittleEndian.Uint32(e[16:20]) {
			if len(rest) == journalEntrySize {
				res.TornTail = true
				break
			}
			return res, fmt.Errorf("bank: audit: journal entry checksum mismatch at offset %d", off)
		}
		key := [2]uint64{
			binary.LittleEndian.Uint64(e[0:8]),
			binary.LittleEndian.Uint64(e[8:16]),
		}
		counts[key]++
		res.Entries++
		off += journalEntrySize
	}
	for key, n := range counts {
		if n > 1 {
			res.Dupes = append(res.Dupes, AuditDupe{ScopeHash: key[0], ID: key[1], Count: n})
		}
	}
	return res, nil
}
