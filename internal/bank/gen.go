package bank

import (
	"context"
	"fmt"
	"sync"

	"abnn2/internal/core"
	"abnn2/internal/nn"
	"abnn2/internal/prg"
	"abnn2/internal/trace"
	"abnn2/internal/transport"
)

// pool is one correlation queue plus its generator. entries is FIFO so
// deterministic pools hand out pairs in generation order.
type pool struct {
	key    Key
	custom Producer // non-nil for RegisterProducer pools
	model  *nn.QuantizedModel
	params core.Params   // session pools only
	sched  core.Schedule // per-layer backend schedule; nil = all-ABNN2
	rng    *prg.PRG      // pool stream; consumed only under genMu
	tr     *trace.Tracer

	genMu   sync.Mutex // serializes generation and lazy generator setup
	session *sessionGen

	mu        sync.Mutex
	entries   []poolEntry
	refilling bool
	conns     []transport.Conn // generator pipe ends, closed by Bank.Close
}

// poolEntry is one queued pair plus, when the bank is durable, the id of
// its on-disk record (0 for memory-only entries, e.g. custom pools or a
// store whose append failed).
type poolEntry struct {
	pair      Pair
	persistID uint64
}

// generate produces one pair; genMu is held by the caller.
func (p *pool) generate(ctx context.Context) (Pair, error) {
	if p.custom != nil {
		return p.custom(p.rng)
	}
	if p.session == nil {
		g, err := newSessionGen(p.model, p.params, p.rng)
		if err != nil {
			return Pair{}, err
		}
		p.mu.Lock()
		p.conns = append(p.conns, g.sconn, g.cconn)
		p.session = g
		p.mu.Unlock()
		// A Close that raced with setup snapshotted the conn list before
		// this append; re-check so the fresh pipe is not left open.
		if ctx.Err() != nil {
			p.closeGen()
			return Pair{}, fmt.Errorf("bank: closed")
		}
	}
	return p.session.generate(p.key.Batch, p.sched)
}

// counters adapts the session generator's pipe meter to the tracer, so
// bank-refill spans carry the offline bytes they moved off the request
// path. Custom pools have no internal wire and report zeros.
func (p *pool) counters() trace.Counters {
	p.mu.Lock()
	g := p.session
	p.mu.Unlock()
	if g == nil {
		return trace.Counters{}
	}
	s := g.meter.Snapshot()
	return trace.Counters{BytesSent: s.BytesAB, BytesRecvd: s.BytesBA, Messages: s.Messages, Flights: s.Flights}
}

// closeGen closes the generator pipes, unblocking any in-flight offline
// protocol round; the interrupted generation surfaces as a refill error.
func (p *pool) closeGen() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

// sessionGen is a persistent two-party offline-phase generator: the
// bank's trusted-dealer core. Base OTs run once at setup; each generate
// call then runs the real offline protocol (server triplet receiver vs
// client triplet sender) over the internal pipe and returns both halves.
type sessionGen struct {
	sconn, cconn transport.Conn
	meter        *transport.Meter
	strip        *core.ServerTriplets
	ctrip        *core.ClientTriplets
	shares       *prg.PRG // the client's r0/z1 stream
	model        *nn.QuantizedModel
	arch         core.Arch
}

func newSessionGen(model *nn.QuantizedModel, p core.Params, rng *prg.PRG) (*sessionGen, error) {
	sconn, cconn := transport.Pipe()
	mc, meter := transport.MeterEndpoint(cconn)
	srng, crng, shares := rng.Child("server"), rng.Child("client"), rng.Child("shares")
	type setup struct {
		t   *core.ServerTriplets
		err error
	}
	ch := make(chan setup, 1)
	go func() {
		t, err := core.NewServerTripletsSeeded(sconn, p, bankSession, srng)
		ch <- setup{t, err}
	}()
	ctrip, cerr := core.NewClientTriplets(mc, p, bankSession, crng)
	if cerr != nil {
		// Unblock the server half before collecting it (one Close downs
		// both pipe ends).
		_ = sconn.Close()
	}
	s := <-ch
	if cerr != nil {
		return nil, fmt.Errorf("bank: generator client setup: %w", cerr)
	}
	if s.err != nil {
		_ = sconn.Close()
		return nil, fmt.Errorf("bank: generator server setup: %w", s.err)
	}
	return &sessionGen{
		sconn: sconn, cconn: mc, meter: meter,
		strip: s.t, ctrip: ctrip, shares: shares,
		model: model, arch: core.ArchOf(model),
	}, nil
}

// generate runs one offline phase, both roles concurrently, and returns
// the paired halves. A non-nil sched routes each layer to its planned
// backend; the stored halves are identical objects either way.
func (g *sessionGen) generate(batch int, sched core.Schedule) (Pair, error) {
	type result struct {
		corr *core.ServerCorr
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		corr, err := g.strip.OfflineCorrSched(g.model, batch, sched)
		ch <- result{corr, err}
	}()
	ccorr, cerr := g.ctrip.OfflineCorrSched(g.arch, g.shares, batch, sched)
	if cerr != nil {
		_ = g.sconn.Close() // release the server half before collecting it
	}
	s := <-ch
	if cerr != nil {
		return Pair{}, fmt.Errorf("bank: generator client offline: %w", cerr)
	}
	if s.err != nil {
		_ = g.sconn.Close()
		return Pair{}, fmt.Errorf("bank: generator server offline: %w", s.err)
	}
	return Pair{Server: s.corr, Client: ccorr}, nil
}
