package bank

import "abnn2/internal/metrics"

// NewMetricsObserver bridges bank events into a metrics registry:
//
//	abnn2_bank_pool_depth{key}      gauge   current pool depth
//	abnn2_bank_hits_total{key}      counter pool draws served
//	abnn2_bank_misses_total{key}    counter dry/unknown-pool draws
//	abnn2_bank_refills_total{key}   counter pairs generated
//	abnn2_bank_refill_errors_total{key}
//	abnn2_bank_claims_total{key}    counter server halves claimed
//	abnn2_bank_claim_misses_total{key}
//	abnn2_bank_claim_evictions_total{key}
//
// Register once per registry and pass as Options.Observer.
func NewMetricsObserver(r *metrics.Registry) Observer {
	return &metricsObserver{
		depth:       r.NewGaugeVec("abnn2_bank_pool_depth", "Correlation pool depth.", "key"),
		hits:        r.NewCounterVec("abnn2_bank_hits_total", "Correlation pool draws served.", "key"),
		misses:      r.NewCounterVec("abnn2_bank_misses_total", "Correlation pool draws that found no pair.", "key"),
		refills:     r.NewCounterVec("abnn2_bank_refills_total", "Correlation pairs generated.", "key"),
		refillErrs:  r.NewCounterVec("abnn2_bank_refill_errors_total", "Failed correlation generations.", "key"),
		claims:      r.NewCounterVec("abnn2_bank_claims_total", "Server halves claimed by sessions.", "key"),
		claimMisses: r.NewCounterVec("abnn2_bank_claim_misses_total", "Claims for unknown or spent correlation IDs.", "key"),
		evictions:   r.NewCounterVec("abnn2_bank_claim_evictions_total", "Parked server halves evicted unclaimed.", "key"),
	}
}

type metricsObserver struct {
	depth       *metrics.GaugeVec
	hits        *metrics.CounterVec
	misses      *metrics.CounterVec
	refills     *metrics.CounterVec
	refillErrs  *metrics.CounterVec
	claims      *metrics.CounterVec
	claimMisses *metrics.CounterVec
	evictions   *metrics.CounterVec
}

func (m *metricsObserver) BankEvent(ev Event) {
	k := ev.Key.String()
	switch ev.Kind {
	case "hit":
		m.hits.With(k).Inc()
		m.depth.With(k).Set(int64(ev.Depth))
	case "miss":
		m.misses.With(k).Inc()
	case "refill":
		m.refills.With(k).Inc()
		m.depth.With(k).Set(int64(ev.Depth))
	case "refill-error":
		m.refillErrs.With(k).Inc()
	case "claim":
		m.claims.With(k).Inc()
	case "claim-miss":
		m.claimMisses.With(k).Inc()
	case "evict":
		m.evictions.With(k).Inc()
	}
}
