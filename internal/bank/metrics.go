package bank

import "abnn2/internal/metrics"

// NewMetricsObserver bridges bank events into a metrics registry:
//
//	abnn2_bank_pool_depth{key}      gauge   current pool depth
//	abnn2_bank_hits_total{key}      counter pool draws served
//	abnn2_bank_misses_total{key}    counter dry/unknown-pool draws
//	abnn2_bank_refills_total{key}   counter pairs generated
//	abnn2_bank_refill_errors_total{key}
//	abnn2_bank_claims_total{key}    counter server halves claimed
//	abnn2_bank_claim_misses_total{key}
//	abnn2_bank_claim_evictions_total{key}
//	abnn2_bank_peer_hits_total{key}   counter peer-paired draws served
//	abnn2_bank_peer_misses_total{key}
//	abnn2_bank_peer_claims_total{key}
//	abnn2_bank_peer_claim_misses_total{key}
//
// plus the durable-store series (plain, so every series is visible in a
// scrape even at zero — the CI integration job greps for them):
//
//	abnn2_bank_persist_segments_total        segment files opened
//	abnn2_bank_persist_appends_total         records persisted
//	abnn2_bank_persist_claims_total          records tombstoned in the journal
//	abnn2_bank_persist_journal_fsyncs_total  journal fsync barriers
//	abnn2_bank_persist_recovered_records     records available after recovery
//	abnn2_bank_persist_quarantined_total     corrupt segments/dirs quarantined
//	abnn2_bank_persist_pruned_total          fully-claimed segment files deleted
//	abnn2_bank_persist_restored_total        dealer pairs reloaded at startup
//	abnn2_bank_persist_errors_total          store append/claim/decode failures
//	abnn2_bank_replenish_rounds_total        remote offline rounds completed
//	abnn2_bank_replenish_retries_total       replenish attempts that failed
//	abnn2_bank_replenish_backoff_ms          current replenisher backoff (0 = healthy)
//
// Register once per registry and pass as Options.Observer (and
// StoreOptions.Observer — the observer is shared).
func NewMetricsObserver(r *metrics.Registry) Observer {
	return &metricsObserver{
		depth:           r.NewGaugeVec("abnn2_bank_pool_depth", "Correlation pool depth.", "key"),
		hits:            r.NewCounterVec("abnn2_bank_hits_total", "Correlation pool draws served.", "key"),
		misses:          r.NewCounterVec("abnn2_bank_misses_total", "Correlation pool draws that found no pair.", "key"),
		refills:         r.NewCounterVec("abnn2_bank_refills_total", "Correlation pairs generated.", "key"),
		refillErrs:      r.NewCounterVec("abnn2_bank_refill_errors_total", "Failed correlation generations.", "key"),
		claims:          r.NewCounterVec("abnn2_bank_claims_total", "Server halves claimed by sessions.", "key"),
		claimMisses:     r.NewCounterVec("abnn2_bank_claim_misses_total", "Claims for unknown or spent correlation IDs.", "key"),
		evictions:       r.NewCounterVec("abnn2_bank_claim_evictions_total", "Parked server halves evicted unclaimed.", "key"),
		peerHits:        r.NewCounterVec("abnn2_bank_peer_hits_total", "Peer-paired pool draws served.", "key"),
		peerMisses:      r.NewCounterVec("abnn2_bank_peer_misses_total", "Peer-paired pool draws that found no half.", "key"),
		peerClaims:      r.NewCounterVec("abnn2_bank_peer_claims_total", "Peer-paired server halves claimed.", "key"),
		peerClaimMisses: r.NewCounterVec("abnn2_bank_peer_claim_misses_total", "Peer-paired claims for unknown or spent IDs.", "key"),
		segments:        r.NewCounter("abnn2_bank_persist_segments_total", "Durable-store segment files opened."),
		appends:         r.NewCounter("abnn2_bank_persist_appends_total", "Correlation records persisted."),
		persistClaims:   r.NewCounter("abnn2_bank_persist_claims_total", "Correlation records tombstoned in the claim journal."),
		fsyncs:          r.NewCounter("abnn2_bank_persist_journal_fsyncs_total", "Claim-journal fsync barriers."),
		recovered:       r.NewGauge("abnn2_bank_persist_recovered_records", "Records available after the startup recovery scan."),
		quarantined:     r.NewCounter("abnn2_bank_persist_quarantined_total", "Corrupt segments or pool dirs quarantined during recovery."),
		pruned:          r.NewCounter("abnn2_bank_persist_pruned_total", "Fully-claimed segment files deleted during recovery or drain."),
		restored:        r.NewCounter("abnn2_bank_persist_restored_total", "Persisted dealer pairs reloaded into pools at startup."),
		persistErrs:     r.NewCounter("abnn2_bank_persist_errors_total", "Durable-store append/claim/decode failures."),
		replenishRounds: r.NewCounter("abnn2_bank_replenish_rounds_total", "Remote offline replenishment rounds completed."),
		replenishRetry:  r.NewCounter("abnn2_bank_replenish_retries_total", "Remote replenishment attempts that failed."),
		backoffMS:       r.NewGauge("abnn2_bank_replenish_backoff_ms", "Current replenisher backoff in milliseconds (0 when healthy)."),
	}
}

type metricsObserver struct {
	depth           *metrics.GaugeVec
	hits            *metrics.CounterVec
	misses          *metrics.CounterVec
	refills         *metrics.CounterVec
	refillErrs      *metrics.CounterVec
	claims          *metrics.CounterVec
	claimMisses     *metrics.CounterVec
	evictions       *metrics.CounterVec
	peerHits        *metrics.CounterVec
	peerMisses      *metrics.CounterVec
	peerClaims      *metrics.CounterVec
	peerClaimMisses *metrics.CounterVec
	segments        *metrics.Counter
	appends         *metrics.Counter
	persistClaims   *metrics.Counter
	fsyncs          *metrics.Counter
	recovered       *metrics.Gauge
	quarantined     *metrics.Counter
	pruned          *metrics.Counter
	restored        *metrics.Counter
	persistErrs     *metrics.Counter
	replenishRounds *metrics.Counter
	replenishRetry  *metrics.Counter
	backoffMS       *metrics.Gauge
}

func (m *metricsObserver) BankEvent(ev Event) {
	k := ev.Key.String()
	switch ev.Kind {
	case "hit":
		m.hits.With(k).Inc()
		m.depth.With(k).Set(int64(ev.Depth))
	case "miss":
		m.misses.With(k).Inc()
	case "refill":
		m.refills.With(k).Inc()
		m.depth.With(k).Set(int64(ev.Depth))
	case "refill-error":
		m.refillErrs.With(k).Inc()
	case "claim":
		m.claims.With(k).Inc()
	case "claim-miss":
		m.claimMisses.With(k).Inc()
	case "evict":
		m.evictions.With(k).Inc()
	case "peer-hit":
		m.peerHits.With(k).Inc()
	case "peer-miss":
		m.peerMisses.With(k).Inc()
	case "peer-claim":
		m.peerClaims.With(k).Inc()
	case "peer-claim-miss":
		m.peerClaimMisses.With(k).Inc()
	case "persist-segment":
		m.segments.Inc()
	case "persist-append":
		m.appends.Inc()
	case "persist-claim":
		m.persistClaims.Inc()
	case "persist-journal-fsync":
		m.fsyncs.Inc()
	case "persist-recover":
		m.recovered.Set(int64(ev.Depth))
	case "persist-quarantine":
		m.quarantined.Inc()
	case "persist-prune":
		m.pruned.Inc()
	case "restore":
		m.restored.Inc()
	case "persist-error", "persist-claim-drop", "persist-decode-error":
		m.persistErrs.Inc()
	case "replenish-round":
		m.replenishRounds.Inc()
	case "replenish-retry":
		m.replenishRetry.Inc()
	case "replenish-backoff":
		m.backoffMS.Set(int64(ev.Depth))
	}
}
