package bank

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is the durable half of the bank: per-scope append-only segment
// files of checksummed correlation records plus one shared claim journal.
// The claim discipline is claim-before-use — a record's journal entry is
// written (and, per FsyncPolicy, fsynced) before the correlation bytes
// are ever handed to a session — so single-use holds across SIGKILL: a
// correlation that might have reached a wire is tombstoned on disk before
// it does.
//
// A fresh Store is inert until Recover has run: every read/write returns
// ErrNotRecovered so a server cannot serve from an unvalidated directory
// (readiness in internal/serve is gated on exactly this). Recovery
// truncates torn tails (the partial write of a crashed append) and
// quarantines structurally corrupt segments; corruption in the journal
// beyond a torn tail fails the whole store closed — replaying a claim is
// the one error this design never risks.
type Store struct {
	opts StoreOptions
	dir  string
	peer PeerID

	mu        sync.Mutex
	recovered bool
	failed    error // hard recovery failure: every op returns it
	closed    bool
	journal   *os.File
	unsynced  int // journal appends since last fsync
	scopes    map[uint64]*scopeState
	stats     RecoverStats
}

// StoreOptions configures OpenStore.
type StoreOptions struct {
	// Dir is the store directory, created if absent. One store per
	// process; concurrent processes on one directory are not supported.
	Dir string
	// FsyncEvery is the journal fsync cadence: fsync after every Nth
	// claim. Default 1 — the only setting under which single-use is
	// guaranteed across SIGKILL; larger values trade that guarantee for
	// claim throughput (a crash may forget up to N-1 claims, letting
	// those correlations be spent again). See DESIGN.md "Durable bank".
	FsyncEvery int
	// SegmentMaxBytes rotates a scope's active segment past this size.
	// Default 64 MiB.
	SegmentMaxBytes int64
	// Observer, when non-nil, receives persist-* events; see
	// NewPersistObserver.
	Observer Observer
}

func (o StoreOptions) fsyncEvery() int {
	if o.FsyncEvery <= 0 {
		return 1
	}
	return o.FsyncEvery
}

func (o StoreOptions) segmentMax() int64 {
	if o.SegmentMaxBytes <= 0 {
		return 64 << 20
	}
	return o.SegmentMaxBytes
}

// RecoverStats summarizes one recovery scan.
type RecoverStats struct {
	Scopes      int // pool directories accepted
	Segments    int // segment files accepted
	Records     int // records available after claim subtraction
	Claimed     int // journal entries applied
	TornTails   int // segment/journal tails truncated
	Quarantined int // segment files or pool dirs quarantined
	Pruned      int // fully-claimed segment files deleted
}

// ErrNotRecovered is returned by store operations before Recover has
// completed successfully.
var ErrNotRecovered = fmt.Errorf("bank: store not recovered")

// scopeState is the in-memory image of one durable pool.
type scopeState struct {
	scope    Scope
	hash     uint64
	dir      string
	seg      *os.File // active segment, nil until first Append
	segSize  int64
	segIndex int      // highest segment index seen/created
	avail    []uint64 // unclaimed record ids, file order
	recs     map[uint64][]byte
	claimed  map[uint64]bool
	segs     []*segmentInfo // every live segment file and the ids it holds
	active   *segmentInfo   // the file behind seg; never pruned
}

// segmentInfo tracks which record ids one segment file holds, so the
// store can delete the file once every one of them has been claimed —
// the pruning that stops the bank directory from growing monotonically.
// ids lists every record parsed from or appended to the file, duplicate
// appends included, which makes pruning conservative: a file is removed
// only when no id it mentions is still servable.
type segmentInfo struct {
	path string
	ids  []uint64
}

// StoreRecord is one available (unclaimed) record, as returned by
// Records.
type StoreRecord struct {
	ID   uint64
	Blob []byte
}

const (
	peerFile  = "PEER"
	scopeFile = "SCOPE"
	journalF  = "journal"
	poolsDir  = "pools"
	quarDir   = "quarantine"
	segPrefix = "seg-"
	segSuffix = ".log"
)

// OpenStore creates or attaches to a store directory and loads (creating
// on first open) the party's durable PeerID. The store is unusable until
// Recover runs; see Store.
func OpenStore(opts StoreOptions) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("bank: store dir required")
	}
	for _, d := range []string{opts.Dir, filepath.Join(opts.Dir, poolsDir), filepath.Join(opts.Dir, quarDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("bank: store dir: %w", err)
		}
	}
	s := &Store{opts: opts, dir: opts.Dir, scopes: make(map[uint64]*scopeState)}
	if err := s.loadPeer(); err != nil {
		return nil, err
	}
	return s, nil
}

// loadPeer reads the durable peer identity, minting a fresh random one on
// first open. The write is atomic (tmp + rename) so a crash mid-mint
// cannot leave a torn identity.
func (s *Store) loadPeer() error {
	path := filepath.Join(s.dir, peerFile)
	if data, err := os.ReadFile(path); err == nil {
		p, perr := ParsePeerID(strings.TrimSpace(string(data)))
		if perr != nil {
			return fmt.Errorf("bank: store %s: %w", peerFile, perr)
		}
		s.peer = p
		return nil
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("bank: store %s: %w", peerFile, err)
	}
	if _, err := rand.Read(s.peer[:]); err != nil {
		return fmt.Errorf("bank: mint peer id: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(s.peer.String()+"\n"), 0o644); err != nil {
		return fmt.Errorf("bank: store %s: %w", peerFile, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("bank: store %s: %w", peerFile, err)
	}
	return nil
}

// PeerID returns this store's durable party identity. Available before
// Recover (the handshake needs it while recovery may still be running).
func (s *Store) PeerID() PeerID { return s.peer }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// NewCorrID mints a random correlation id for peer-paired records.
// Random (not sequential) so ids are unguessable without the journal —
// see SECURITY.md.
func NewCorrID() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("bank: entropy unavailable: %v", err))
	}
	return binary.LittleEndian.Uint64(b[:])
}

// Recover scans the store: replays the claim journal, validates every
// segment, truncates torn tails, quarantines corrupt segments or pool
// directories, and builds the in-memory pool image. It must complete
// before any other store operation. A hard journal failure poisons the
// store permanently (fail closed); segment-level corruption only
// quarantines the affected files.
func (s *Store) Recover() (RecoverStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return RecoverStats{}, fmt.Errorf("bank: store closed")
	}
	if s.failed != nil {
		return RecoverStats{}, s.failed
	}
	if s.recovered {
		return s.stats, nil
	}
	var st RecoverStats
	claims, err := s.recoverJournal(&st)
	if err != nil {
		s.failed = fmt.Errorf("bank: claim journal unrecoverable, store disabled: %w", err)
		return RecoverStats{}, s.failed
	}
	if err := s.recoverPools(claims, &st); err != nil {
		s.failed = err
		return RecoverStats{}, s.failed
	}
	s.recovered = true
	s.stats = st
	s.observe(Event{Kind: "persist-recover", Depth: st.Records})
	return st, nil
}

// recoverJournal loads or creates the claim journal. Torn tails are
// truncated; anything else is a hard error (the caller fails the store
// closed).
func (s *Store) recoverJournal(st *RecoverStats) (map[uint64]map[uint64]bool, error) {
	path := filepath.Join(s.dir, journalF)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		data = nil
	} else if err != nil {
		return nil, err
	}
	var claims map[uint64]map[uint64]bool
	if len(data) == 0 {
		claims = make(map[uint64]map[uint64]bool)
		if err := os.WriteFile(path, journalMagic, 0o644); err != nil {
			return nil, err
		}
	} else {
		var keep int64
		var serr error
		claims, keep, serr = scanJournal(data)
		if serr == errTorn {
			st.TornTails++
			if err := os.Truncate(path, maxInt64(keep, int64(len(journalMagic)))); err != nil {
				return nil, err
			}
			if keep < int64(len(journalMagic)) {
				if err := os.WriteFile(path, journalMagic, 0o644); err != nil {
					return nil, err
				}
			}
		} else if serr != nil {
			return nil, serr
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.journal = f
	for _, ids := range claims {
		st.Claimed += len(ids)
	}
	return claims, nil
}

// recoverPools scans every pool directory under pools/.
func (s *Store) recoverPools(claims map[uint64]map[uint64]bool, st *RecoverStats) error {
	root := filepath.Join(s.dir, poolsDir)
	entries, err := os.ReadDir(root)
	if err != nil {
		return fmt.Errorf("bank: store pools: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		sc, ok := s.recoverPoolDir(dir, e.Name(), st)
		if !ok {
			continue
		}
		if prev, dup := s.scopes[sc.hash]; dup {
			return fmt.Errorf("bank: scope hash collision between %q and %q", prev.scope, sc.scope)
		}
		// Subtract journaled claims from what the segments offered.
		for id := range claims[sc.hash] {
			if _, have := sc.recs[id]; have {
				delete(sc.recs, id)
				sc.claimed[id] = true
			}
		}
		live := sc.avail[:0]
		for _, id := range sc.avail {
			if _, have := sc.recs[id]; have {
				live = append(live, id)
			}
		}
		sc.avail = live
		st.Pruned += s.pruneLocked(sc)
		s.scopes[sc.hash] = sc
		st.Scopes++
		st.Records += len(sc.avail)
		s.observe(Event{Kind: "persist-depth", Key: sc.scope.Key, Depth: len(sc.avail)})
	}
	return nil
}

// recoverPoolDir validates one pool directory, returning ok=false after
// quarantining it (or its corrupt segments).
func (s *Store) recoverPoolDir(dir, name string, st *RecoverStats) (*scopeState, bool) {
	scopeData, err := os.ReadFile(filepath.Join(dir, scopeFile))
	if err != nil {
		s.quarantine(dir, st)
		return nil, false
	}
	scope, err := ParseScope(strings.TrimSpace(string(scopeData)))
	if err != nil || scope.dirName() != name {
		s.quarantine(dir, st)
		return nil, false
	}
	sc := &scopeState{
		scope: scope, hash: scope.hash(), dir: dir,
		recs: make(map[uint64][]byte), claimed: make(map[uint64]bool),
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		s.quarantine(dir, st)
		return nil, false
	}
	var segs []string
	for _, f := range files {
		n := f.Name()
		if strings.HasPrefix(n, segPrefix) && strings.HasSuffix(n, segSuffix) {
			segs = append(segs, n)
		}
	}
	sort.Strings(segs)
	for _, seg := range segs {
		path := filepath.Join(dir, seg)
		var idx int
		if _, err := fmt.Sscanf(seg, segPrefix+"%d"+segSuffix, &idx); err == nil && idx > sc.segIndex {
			sc.segIndex = idx
		}
		data, err := os.ReadFile(path)
		if err != nil {
			s.quarantine(path, st)
			continue
		}
		si := &segmentInfo{path: path}
		hdrScope, recs, keep, serr := scanSegment(data)
		switch {
		case serr == errTorn:
			st.TornTails++
			if err := os.Truncate(path, keep); err != nil {
				s.quarantine(path, st)
				continue
			}
			if keep == 0 {
				// Crashed before the header landed: nothing usable, and
				// the empty file is prunable.
				sc.segs = append(sc.segs, si)
				continue
			}
		case serr != nil:
			s.quarantine(path, st)
			continue
		}
		if len(recs) > 0 && hdrScope != scope.String() {
			s.quarantine(path, st)
			continue
		}
		st.Segments++
		for _, r := range recs {
			si.ids = append(si.ids, r.id)
			if _, dup := sc.recs[r.id]; dup {
				continue // replay of an earlier append; first wins
			}
			sc.recs[r.id] = r.blob
			sc.avail = append(sc.avail, r.id)
		}
		sc.segs = append(sc.segs, si)
	}
	return sc, true
}

// quarantine moves a corrupt segment file or pool directory aside so
// recovery completes without it — corrupt material is preserved for
// forensics, never served, and never deleted.
func (s *Store) quarantine(path string, st *RecoverStats) {
	base := filepath.Base(path)
	dst := filepath.Join(s.dir, quarDir, base)
	for i := 1; ; i++ {
		if _, err := os.Lstat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(s.dir, quarDir, fmt.Sprintf("%s.%d", base, i))
	}
	if err := os.Rename(path, dst); err != nil {
		// Last resort: a quarantine that cannot move still must not serve.
		_ = os.Rename(path, path+".quarantined")
	}
	st.Quarantined++
	s.observe(Event{Kind: "persist-quarantine"})
}

// getState returns the recovered state for scope, creating its directory
// and in-memory image on first use when create is set.
func (s *Store) getState(scope Scope, create bool) (*scopeState, error) {
	if s.closed {
		return nil, fmt.Errorf("bank: store closed")
	}
	if s.failed != nil {
		return nil, s.failed
	}
	if !s.recovered {
		return nil, ErrNotRecovered
	}
	h := scope.hash()
	if sc, ok := s.scopes[h]; ok {
		if sc.scope != scope {
			return nil, fmt.Errorf("bank: scope hash collision between %q and %q", sc.scope, scope)
		}
		return sc, nil
	}
	if !create {
		return nil, nil
	}
	if err := scope.valid(); err != nil {
		return nil, err
	}
	dir := filepath.Join(s.dir, poolsDir, scope.dirName())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("bank: pool dir: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, scopeFile), []byte(scope.String()+"\n"), 0o644); err != nil {
		return nil, fmt.Errorf("bank: pool scope file: %w", err)
	}
	sc := &scopeState{
		scope: scope, hash: h, dir: dir,
		recs: make(map[uint64][]byte), claimed: make(map[uint64]bool),
	}
	s.scopes[h] = sc
	return sc, nil
}

// Append durably adds one correlation record under scope. The id must be
// fresh for the scope. The segment write is buffered by the OS — a crash
// may lose unsynced appends, which only costs regeneration (claims, not
// appends, carry the single-use guarantee).
func (s *Store) Append(scope Scope, id uint64, blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sc, err := s.getState(scope, true)
	if err != nil {
		return err
	}
	if sc.claimed[id] {
		return fmt.Errorf("bank: record id %d already claimed in scope", id)
	}
	if _, dup := sc.recs[id]; dup {
		return fmt.Errorf("bank: duplicate record id %d in scope", id)
	}
	if sc.seg == nil {
		if err := s.openSegment(sc); err != nil {
			return err
		}
	}
	rec := AppendSegmentRecord(nil, id, blob)
	if _, err := sc.seg.Write(rec); err != nil {
		return fmt.Errorf("bank: segment append: %w", err)
	}
	sc.segSize += int64(len(rec))
	if sc.active != nil {
		sc.active.ids = append(sc.active.ids, id)
	}
	stored := make([]byte, len(blob))
	copy(stored, blob)
	sc.recs[id] = stored
	sc.avail = append(sc.avail, id)
	if sc.segSize >= s.opts.segmentMax() {
		if err := s.rotateSegment(sc); err != nil {
			return err
		}
	}
	s.observe(Event{Kind: "persist-append", Key: scope.Key, Depth: len(sc.avail)})
	return nil
}

// openSegment starts a fresh segment file for sc. Recovery never reopens
// old segments for append, so a truncated tail is never re-extended.
func (s *Store) openSegment(sc *scopeState) error {
	sc.segIndex++
	path := filepath.Join(sc.dir, fmt.Sprintf("%s%06d%s", segPrefix, sc.segIndex, segSuffix))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("bank: open segment: %w", err)
	}
	hdr := AppendSegmentHeader(nil, sc.scope.String())
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("bank: segment header: %w", err)
	}
	sc.seg, sc.segSize = f, int64(len(hdr))
	sc.active = &segmentInfo{path: path}
	sc.segs = append(sc.segs, sc.active)
	s.observe(Event{Kind: "persist-segment", Key: sc.scope.Key})
	return nil
}

// rotateSegment fsyncs and closes the active segment; the next Append
// opens a new one. A closed segment becomes eligible for pruning once
// its every record is claimed.
func (s *Store) rotateSegment(sc *scopeState) error {
	if sc.seg == nil {
		return nil
	}
	sc.active = nil
	if err := sc.seg.Sync(); err != nil {
		sc.seg.Close()
		sc.seg = nil
		return fmt.Errorf("bank: segment sync: %w", err)
	}
	err := sc.seg.Close()
	sc.seg = nil
	return err
}

// pruneLocked deletes the scope's fully-claimed closed segment files and
// returns how many it removed. A file is dead when none of the record
// ids it holds is still servable (present in sc.recs); the active
// segment is never touched. Deleting a dead file cannot resurrect an id:
// the claim journal — which is what enforces single-use — is append-only
// and keeps its entries forever.
func (s *Store) pruneLocked(sc *scopeState) int {
	pruned := 0
	kept := sc.segs[:0]
	for _, seg := range sc.segs {
		dead := seg != sc.active
		for _, id := range seg.ids {
			if _, live := sc.recs[id]; live {
				dead = false
				break
			}
		}
		if !dead {
			kept = append(kept, seg)
			continue
		}
		if err := os.Remove(seg.path); err != nil {
			kept = append(kept, seg) // retried on the next prune pass
			continue
		}
		pruned++
		s.observe(Event{Kind: "persist-prune", Key: sc.scope.Key})
	}
	// Drop the released tail so kept/segs never alias stale entries.
	for i := len(kept); i < len(sc.segs); i++ {
		sc.segs[i] = nil
	}
	sc.segs = kept
	return pruned
}

// claimLocked journals a claim and applies it in memory. The in-memory
// mark happens even when the disk write fails: once a journal append was
// attempted the entry may be durable, so the record must never be served
// (the error then surfaces to the caller, who treats the draw as a miss).
func (s *Store) claimLocked(sc *scopeState, id uint64) error {
	delete(sc.recs, id)
	sc.claimed[id] = true
	entry := AppendJournalEntry(nil, sc.hash, id)
	if _, err := s.journal.Write(entry); err != nil {
		return fmt.Errorf("bank: journal append: %w", err)
	}
	s.unsynced++
	if s.unsynced >= s.opts.fsyncEvery() {
		if err := s.journal.Sync(); err != nil {
			return fmt.Errorf("bank: journal sync: %w", err)
		}
		s.unsynced = 0
		s.observe(Event{Kind: "persist-journal-fsync"})
	}
	s.observe(Event{Kind: "persist-claim", Key: sc.scope.Key})
	return nil
}

// Draw claims and returns the oldest available record under scope. ok is
// false (with nil error) when the scope is dry or unknown; an error means
// the claim could not be made durable and nothing was handed out.
func (s *Store) Draw(scope Scope) (id uint64, blob []byte, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sc, err := s.getState(scope, false)
	if err != nil || sc == nil {
		return 0, nil, false, err
	}
	for len(sc.avail) > 0 {
		id = sc.avail[0]
		sc.avail = sc.avail[1:]
		b, have := sc.recs[id]
		if !have {
			continue // claimed through ClaimByID while queued
		}
		if err := s.claimLocked(sc, id); err != nil {
			return 0, nil, false, err
		}
		return id, b, true, nil
	}
	return 0, nil, false, nil
}

// ClaimByID claims one specific record (the server side of a peer-paired
// draw, where the client announced the id). Same error contract as Draw.
func (s *Store) ClaimByID(scope Scope, id uint64) (blob []byte, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sc, err := s.getState(scope, false)
	if err != nil || sc == nil {
		return nil, false, err
	}
	b, have := sc.recs[id]
	if !have {
		return nil, false, nil
	}
	if err := s.claimLocked(sc, id); err != nil {
		return nil, false, err
	}
	return b, true, nil
}

// Records returns the available records under scope without claiming
// them — the bank's restart restore path, which re-parks pairs in memory
// but still claims each one through the journal at Acquire time.
func (s *Store) Records(scope Scope) ([]StoreRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sc, err := s.getState(scope, false)
	if err != nil || sc == nil {
		return nil, err
	}
	out := make([]StoreRecord, 0, len(sc.avail))
	for _, id := range sc.avail {
		if b, have := sc.recs[id]; have {
			out = append(out, StoreRecord{ID: id, Blob: b})
		}
	}
	return out, nil
}

// Depth returns the number of available records under scope.
func (s *Store) Depth(scope Scope) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	sc, err := s.getState(scope, false)
	if err != nil || sc == nil {
		return 0
	}
	n := 0
	for _, id := range sc.avail {
		if _, have := sc.recs[id]; have {
			n++
		}
	}
	return n
}

// Scopes returns every recovered scope in deterministic order.
func (s *Store) Scopes() []Scope {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Scope, 0, len(s.scopes))
	for _, sc := range s.scopes {
		out = append(out, sc.scope)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Recovered reports whether Recover has completed successfully.
func (s *Store) Recovered() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Sync flushes the journal and every active segment to stable storage —
// the drain path, so a graceful shutdown leaves nothing in OS buffers.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.recovered || s.closed {
		return nil
	}
	var first error
	if s.unsynced > 0 {
		if err := s.journal.Sync(); err != nil {
			first = err
		} else {
			s.unsynced = 0
			s.observe(Event{Kind: "persist-journal-fsync"})
		}
	}
	for _, sc := range s.scopes {
		if sc.seg != nil {
			if err := sc.seg.Sync(); err != nil && first == nil {
				first = err
			}
		}
		// Drain doubles as cleanup: closed segments whose records have
		// all been claimed are deleted here, so the directory shrinks on
		// every graceful shutdown as well as on recovery.
		s.pruneLocked(sc)
	}
	return first
}

// Close syncs and closes every open file. The store is unusable after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	if s.journal != nil {
		if s.unsynced > 0 {
			if err := s.journal.Sync(); err != nil {
				first = err
			}
		}
		if err := s.journal.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, sc := range s.scopes {
		if sc.seg != nil {
			if err := sc.seg.Sync(); err != nil && first == nil {
				first = err
			}
			if err := sc.seg.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

func (s *Store) observe(ev Event) {
	if s.opts.Observer != nil {
		s.opts.Observer.BankEvent(ev)
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
