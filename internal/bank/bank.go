// Package bank implements the offline correlation bank: a background
// precompute service that generates the protocol's data-independent
// material — OT-extension flights and per-layer matmul triplets — off the
// request path, so a session's online phase is round-trips plus matmul
// only (the paper's offline/online split, Tables 3-5, made operational).
//
// Correlations are keyed by (model identity, quantization scheme η, ring
// width ℓ, batch size, backend) and held in bounded per-key pools with
// low-watermark replenishment. A client session Acquires its half of a
// pair together with a correlation ID, announces the ID in-band, and the
// server session Claims the matching server half.
//
// Security model: the bank is an in-process trusted dealer. It produces
// each pair by running the genuine two-party offline protocol between a
// persistent generator pair over an internal pipe, so the stored halves
// are exactly what a live offline phase would have produced; the "dealer"
// is the process that hosts both generator endpoints. This models the
// standard SPDZ-style preprocessing functionality and is sound only when
// bank and parties share a trust domain (one process, or an operator
// running a load harness against its own server). Pairs are single-use by
// construction: Acquire removes the entry and Claim removes the parked
// half, so no correlation can back two online phases (see DESIGN.md,
// "Offline correlation bank").
package bank

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"abnn2/internal/core"
	"abnn2/internal/nn"
	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
	"abnn2/internal/trace"
)

// SessionBackend is the Key.Backend of pools that feed full inference
// sessions (paired core.ServerCorr/core.ClientCorr halves). Other backend
// names are free for custom pools registered with RegisterProducer.
const SessionBackend = "abnn2"

// planPrefix starts the Key.Backend of pools generated under a per-layer
// protocol schedule; the remainder is the plan fingerprint, so a pool
// only ever serves sessions running that exact schedule.
const planPrefix = "plan:"

// PlanBackend returns the Key.Backend of session pools generated under
// the plan with the given fingerprint (see internal/plan.Fingerprint).
func PlanBackend(fingerprint string) string { return planPrefix + fingerprint }

// Key identifies one correlation pool. Model is the digest returned by
// RegisterModel for session pools (free-form for custom pools); Scheme is
// the quantization scheme designation (η); RingBits is ℓ; Batch the
// online batch size the correlations are sized for.
type Key struct {
	Model    string
	Scheme   string
	RingBits uint
	Batch    int
	Backend  string
}

// String renders the key for labels and log lines, with the model digest
// truncated for readability.
func (k Key) String() string {
	model := k.Model
	if len(model) > 12 {
		model = model[:12]
	}
	return fmt.Sprintf("%s/%s/l%d/b%d/%s", model, k.Scheme, k.RingBits, k.Batch, k.Backend)
}

// Pair is one precomputed correlation: the two parties' paired halves.
// For session pools Server is a *core.ServerCorr and Client a
// *core.ClientCorr; custom pools store whatever their Producer returns.
type Pair struct {
	Server any
	Client any
}

// Producer generates one correlation pair for a custom pool. rng is the
// pool's deterministic stream (when the bank is seeded); calls are
// serialized per pool, so a Producer may keep state behind the closure.
type Producer func(rng *prg.PRG) (Pair, error)

// Event is one bank occurrence delivered to an Observer: Kind is "hit",
// "miss", "claim", "claim-miss", "refill", "refill-error", or "evict";
// Depth is the pool depth after the event where meaningful.
type Event struct {
	Kind  string
	Key   Key
	Depth int
	Err   error
}

// Observer receives bank events; see NewMetricsObserver for the standard
// metrics bridge. Calls may come from any goroutine and must not block.
type Observer interface {
	BankEvent(Event)
}

// Options sizes and instruments a Bank.
type Options struct {
	// Capacity bounds each pool's depth. Default 8.
	Capacity int
	// Low is the refill watermark: a pool dropping below it triggers
	// background replenishment up to Capacity. Default Capacity/2,
	// minimum 1.
	Low int
	// Workers bounds generation compute parallelism (the internal/par
	// pool), like core.Params.Workers. 0 means one worker per CPU.
	Workers int
	// Seed, when non-zero, makes all generated correlations
	// deterministic: each pool derives an independent child stream keyed
	// by its Key, so the sequence drawn from one pool is independent of
	// interleaving with other pools. Testing only.
	Seed uint64
	// Trace, when non-nil, receives one "bank-refill" span per generated
	// pair (party "bank"), carrying the offline bytes and wall time moved
	// off the request path.
	Trace trace.Sink
	// Observer, when non-nil, receives pool hit/miss/refill/depth events;
	// see NewMetricsObserver.
	Observer Observer
	// Store, when non-nil, makes the bank durable: generated dealer pairs
	// are persisted as they are pushed, Restore reloads them after a
	// restart, every Acquire tombstones its pair in the claim journal
	// before handing it out, and the peer-paired AcquirePeer/ClaimPeer/
	// PutPeer* APIs become available. The store must have completed
	// Recover before the bank touches it.
	Store *Store
}

func (o Options) capacity() int {
	if o.Capacity <= 0 {
		return 8
	}
	return o.Capacity
}

func (o Options) low() int {
	if o.Low > 0 {
		return o.Low
	}
	if l := o.capacity() / 2; l > 0 {
		return l
	}
	return 1
}

// maxClaims bounds the parked-server-half map: an Acquire whose ID is
// never Claimed (client died before announcing) must not leak memory
// forever, so the oldest parked halves are evicted FIFO past this bound.
const maxClaims = 1024

// bankSession is the OT session tag of the bank's internal generator
// pairs, distinct from the live session tags in internal/core.
const bankSession = 0xBA

// Stats is a snapshot of bank counters and pool depths.
type Stats struct {
	Hits, Misses int64
	Claims       int64
	ClaimMisses  int64
	Refills      int64
	RefillErrors int64
	Depths       map[Key]int
}

type claimEntry struct {
	key  Key
	half any
}

// Bank is the correlation bank. All methods are safe for concurrent use.
type Bank struct {
	opts   Options
	ctx    context.Context
	cancel context.CancelFunc
	rng    *prg.PRG // root stream; pool children derived under mu

	mu       sync.Mutex
	models   map[string]*nn.QuantizedModel
	scheds   map[string]schedEntry
	pools    map[Key]*pool
	claims   map[uint64]claimEntry
	order    []uint64 // claim insertion order, for eviction
	nextID   uint64
	draining bool
	closed   bool

	wg sync.WaitGroup

	hits, misses, claimed, claimMisses, refills, refillErrors atomic.Int64
}

// New returns an empty bank. Register models (or custom producers), then
// Prewarm pools or let first-touch misses warm them in the background.
func New(opts Options) *Bank {
	ctx, cancel := context.WithCancel(context.Background())
	var rng *prg.PRG
	if opts.Seed != 0 {
		rng = prg.New(prg.SeedFromInt(opts.Seed))
	} else {
		rng = prg.New(prg.NewSeed())
	}
	return &Bank{
		opts:   opts,
		ctx:    ctx,
		cancel: cancel,
		rng:    rng,
		models: make(map[string]*nn.QuantizedModel),
		scheds: make(map[string]schedEntry),
		pools:  make(map[Key]*pool),
		claims: make(map[uint64]claimEntry),
	}
}

// schedEntry is one registered per-layer protocol schedule, keyed by its
// plan fingerprint.
type schedEntry struct {
	sched       core.Schedule
	miniONNBits int
}

// RegisterSchedule makes planned session pools (Key.Backend =
// PlanBackend(fingerprint)) generable: their offline phase runs under
// sched instead of all-ABNN2. miniONNBits sets the Paillier key size for
// MiniONN layers (0 = default). Idempotent for identical registrations.
// Planned pools are not reloaded by Restore (their scopes stay on disk
// untouched); they regenerate on demand.
func (b *Bank) RegisterSchedule(fingerprint string, sched core.Schedule, miniONNBits int) error {
	if fingerprint == "" || sched == nil {
		return fmt.Errorf("bank: schedule registration needs a fingerprint and a schedule")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("bank: closed")
	}
	b.scheds[fingerprint] = schedEntry{sched: sched, miniONNBits: miniONNBits}
	return nil
}

// ModelID returns the bank identity of a quantized model: a digest of its
// canonical serialization, so both parties derive the same pool key from
// the same public model description.
func ModelID(qm *nn.QuantizedModel) (string, error) {
	data, err := nn.MarshalQuantized(qm)
	if err != nil {
		return "", fmt.Errorf("bank: model identity: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// RegisterModel makes a model's session pools available and returns the
// model ID clients put in their pool keys. Pools themselves are created
// lazily per (ring, batch) on first Acquire or Prewarm. Idempotent.
func (b *Bank) RegisterModel(qm *nn.QuantizedModel) (string, error) {
	id, err := ModelID(qm)
	if err != nil {
		return "", err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return "", fmt.Errorf("bank: closed")
	}
	b.models[id] = qm
	return id, nil
}

// RegisterProducer creates a custom pool generating pairs with gen —
// e.g. raw matmul triplets from one of the testkit backends. The key's
// Backend must not be SessionBackend (session pools are derived from
// registered models).
func (b *Bank) RegisterProducer(key Key, gen Producer) error {
	if key.Backend == SessionBackend {
		return fmt.Errorf("bank: backend %q is reserved for session pools", SessionBackend)
	}
	if gen == nil {
		return fmt.Errorf("bank: nil producer")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("bank: closed")
	}
	if _, dup := b.pools[key]; dup {
		return fmt.Errorf("bank: pool %v already registered", key)
	}
	b.pools[key] = b.newPoolLocked(key, gen)
	return nil
}

// newPoolLocked builds a pool shell; b.mu must be held (the pool's rng is
// derived from the bank root stream).
func (b *Bank) newPoolLocked(key Key, gen Producer) *pool {
	p := &pool{key: key, custom: gen, rng: b.rng.Child("pool/" + key.String())}
	if b.opts.Trace != nil {
		p.tr = trace.New(b.opts.Trace, trace.WithParty("bank"),
			trace.WithLabel(key.String()), trace.WithCounters(p.counters))
	}
	return p
}

// lookup returns the pool for key, creating a session pool on first touch
// when the key is well-formed and its model is registered; nil otherwise.
func (b *Bank) lookup(key Key) *pool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	if p, ok := b.pools[key]; ok {
		return p
	}
	var sched core.Schedule
	var mbits int
	switch {
	case key.Backend == SessionBackend:
	case strings.HasPrefix(key.Backend, planPrefix):
		e, ok := b.scheds[strings.TrimPrefix(key.Backend, planPrefix)]
		if !ok {
			return nil
		}
		sched, mbits = e.sched, e.miniONNBits
	default:
		return nil
	}
	qm, ok := b.models[key.Model]
	if !ok {
		return nil
	}
	params, err := sessionParams(qm, key, b.opts.Workers)
	if err != nil {
		return nil
	}
	if sched != nil && len(sched) != len(qm.Layers) {
		return nil
	}
	params.MiniONNBits = mbits
	p := b.newPoolLocked(key, nil)
	p.model, p.params, p.sched = qm, params, sched
	b.pools[key] = p
	return p
}

// sessionParams validates a session key against its model and builds the
// generator protocol parameters.
func sessionParams(qm *nn.QuantizedModel, key Key, workers int) (core.Params, error) {
	if key.Batch <= 0 || key.Batch > 1<<20 {
		return core.Params{}, fmt.Errorf("bank: batch %d out of range", key.Batch)
	}
	if key.RingBits < 8 || key.RingBits > 64 {
		return core.Params{}, fmt.Errorf("bank: ring width %d out of range", key.RingBits)
	}
	if name := qm.Layers[0].Scheme.Name(); name != key.Scheme {
		return core.Params{}, fmt.Errorf("bank: key scheme %q does not match model scheme %q", key.Scheme, name)
	}
	scheme, err := quant.Parse(key.Scheme)
	if err != nil {
		return core.Params{}, fmt.Errorf("bank: key scheme: %w", err)
	}
	p := core.Params{Ring: ring.New(key.RingBits), Scheme: scheme, Workers: workers}
	if err := p.Validate(); err != nil {
		return core.Params{}, err
	}
	return p, nil
}

// Acquire draws the client half of one correlation from the pool,
// parking the server half under the returned ID for the peer session to
// Claim. ok is false when the pool is dry or the key unknown — callers
// fall back to inline offline generation or fail fast, never wait: a dry
// pool additionally triggers background warming for subsequent sessions.
func (b *Bank) Acquire(key Key) (id uint64, clientHalf any, ok bool) {
	p := b.lookup(key)
	if p == nil {
		b.misses.Add(1)
		b.observe(Event{Kind: "miss", Key: key})
		return 0, nil, false
	}
	var pair Pair
	var depth int
	for {
		p.mu.Lock()
		if len(p.entries) == 0 {
			p.mu.Unlock()
			b.maybeRefill(p)
			b.misses.Add(1)
			b.observe(Event{Kind: "miss", Key: key})
			return 0, nil, false
		}
		e := p.entries[0]
		p.entries[0] = poolEntry{}
		p.entries = p.entries[1:]
		depth = len(p.entries)
		p.mu.Unlock()
		// Claim-before-use: tombstone the durable record in the journal
		// before the pair can reach a session. A claim that cannot be made
		// durable drops the pair (never serve what might replay after a
		// crash) and tries the next entry.
		if e.persistID != 0 && b.opts.Store != nil {
			if _, ok, err := b.opts.Store.ClaimByID(Scope{Key: key}, e.persistID); err != nil || !ok {
				b.observe(Event{Kind: "persist-claim-drop", Key: key, Err: err})
				continue
			}
		}
		pair = e.pair
		break
	}
	id = b.park(key, pair.Server)
	b.maybeRefill(p)
	b.hits.Add(1)
	b.observe(Event{Kind: "hit", Key: key, Depth: depth})
	return id, pair.Client, true
}

// park stores a server half for Claim, evicting the oldest parked half
// past maxClaims.
func (b *Bank) park(key Key, half any) uint64 {
	var evicted []Event
	b.mu.Lock()
	b.nextID++
	id := b.nextID
	b.claims[id] = claimEntry{key: key, half: half}
	b.order = append(b.order, id)
	for len(b.claims) > maxClaims {
		old := b.order[0]
		b.order = b.order[1:]
		if e, ok := b.claims[old]; ok {
			delete(b.claims, old)
			evicted = append(evicted, Event{Kind: "evict", Key: e.key})
		}
	}
	b.mu.Unlock()
	for _, ev := range evicted {
		b.observe(ev)
	}
	return id
}

// Claim hands over the parked server half for id. The key must match the
// one the half was acquired under (a mismatch is a protocol error on the
// announcing client's side). Each ID claims at most once.
func (b *Bank) Claim(id uint64, key Key) (serverHalf any, ok bool) {
	b.mu.Lock()
	e, found := b.claims[id]
	if found && e.key == key {
		delete(b.claims, id)
		for i, v := range b.order {
			if v == id {
				b.order = append(b.order[:i], b.order[i+1:]...)
				break
			}
		}
		b.mu.Unlock()
		b.claimed.Add(1)
		b.observe(Event{Kind: "claim", Key: key})
		return e.half, true
	}
	b.mu.Unlock()
	b.claimMisses.Add(1)
	b.observe(Event{Kind: "claim-miss", Key: key})
	return nil, false
}

// Capacity returns the bank's per-pool depth bound — also the depth cap
// a remote offline session enforces per peer pool.
func (b *Bank) Capacity() int { return b.opts.capacity() }

// Low returns the bank's refill watermark.
func (b *Bank) Low() int { return b.opts.low() }

// Prewarm synchronously fills the pool to depth n (clamped to Capacity).
// Errors out rather than blocking forever when the bank is closing.
func (b *Bank) Prewarm(key Key, n int) error {
	p := b.lookup(key)
	if p == nil {
		return fmt.Errorf("bank: no pool for %v (model not registered?)", key)
	}
	if cap := b.opts.capacity(); n > cap {
		n = cap
	}
	for {
		p.mu.Lock()
		depth := len(p.entries)
		p.mu.Unlock()
		if depth >= n {
			return nil
		}
		pair, err := b.generateOne(p)
		if err != nil {
			return err
		}
		b.push(p, pair)
	}
}

// Depth returns the current depth of the pool for key (0 when absent).
func (b *Bank) Depth(key Key) int {
	b.mu.Lock()
	p := b.pools[key]
	b.mu.Unlock()
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// Snapshot returns current counters and per-pool depths.
func (b *Bank) Snapshot() Stats {
	s := Stats{
		Hits:         b.hits.Load(),
		Misses:       b.misses.Load(),
		Claims:       b.claimed.Load(),
		ClaimMisses:  b.claimMisses.Load(),
		Refills:      b.refills.Load(),
		RefillErrors: b.refillErrors.Load(),
		Depths:       make(map[Key]int),
	}
	b.mu.Lock()
	pools := make([]*pool, 0, len(b.pools))
	for _, p := range b.pools {
		pools = append(pools, p)
	}
	b.mu.Unlock()
	for _, p := range pools {
		p.mu.Lock()
		s.Depths[p.key] = len(p.entries)
		p.mu.Unlock()
	}
	return s
}

// Keys returns the bank's pool keys in deterministic order.
func (b *Bank) Keys() []Key {
	b.mu.Lock()
	keys := make([]Key, 0, len(b.pools))
	for k := range b.pools {
		keys = append(keys, k)
	}
	b.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys
}

// Drain stops accepting new replenishment work, waits for in-flight
// generation to finish (the SIGTERM path of cmd/abnn2-server), and
// flushes the claim journal so no claim is left in OS buffers. Returns
// ctx's error if the wait outlives it; callers should follow up with
// Close, which force-cancels whatever remains.
func (b *Bank) Drain(ctx context.Context) error {
	b.mu.Lock()
	b.draining = true
	b.mu.Unlock()
	done := make(chan struct{})
	go func() {
		b.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if st := b.opts.Store; st != nil {
			return st.Sync()
		}
		return nil
	case <-ctx.Done():
		if st := b.opts.Store; st != nil {
			_ = st.Sync()
		}
		return ctx.Err()
	}
}

// Close force-stops the bank: pending refills are cancelled (in-flight
// generator protocol rounds are unblocked by closing their pipes), and
// Close returns once every background goroutine has exited. Safe to call
// more than once; Acquire and Claim report misses afterwards.
func (b *Bank) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.wg.Wait()
		return nil
	}
	b.closed = true
	b.draining = true
	pools := make([]*pool, 0, len(b.pools))
	for _, p := range b.pools {
		pools = append(pools, p)
	}
	b.mu.Unlock()
	b.cancel()
	for _, p := range pools {
		p.closeGen()
	}
	b.wg.Wait()
	return nil
}

// stopping reports whether new generation work should be abandoned.
func (b *Bank) stopping() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.draining || b.closed
}

// maybeRefill starts the pool's background replenisher when depth is
// below the low watermark and none is running. At most one replenisher
// runs per pool; generation compute inside it still fans out across the
// worker pool.
func (b *Bank) maybeRefill(p *pool) {
	if b.stopping() {
		return
	}
	low := b.opts.low()
	p.mu.Lock()
	if p.refilling || len(p.entries) >= low {
		p.mu.Unlock()
		return
	}
	p.refilling = true
	p.mu.Unlock()
	b.wg.Add(1)
	go b.refill(p)
}

// refill replenishes one pool up to Capacity, then exits. A generation
// error stops the replenisher (the next Acquire may retry); Close aborts
// it mid-pair by closing the generator pipe.
func (b *Bank) refill(p *pool) {
	defer b.wg.Done()
	cap := b.opts.capacity()
	for !b.stopping() {
		p.mu.Lock()
		depth := len(p.entries)
		p.mu.Unlock()
		if depth >= cap {
			break
		}
		pair, err := b.generateOne(p)
		if err != nil {
			b.refillErrors.Add(1)
			b.observe(Event{Kind: "refill-error", Key: p.key, Err: err})
			break
		}
		b.push(p, pair)
	}
	p.mu.Lock()
	p.refilling = false
	depth := len(p.entries)
	p.mu.Unlock()
	// An Acquire that raced with our exit saw refilling=true and skipped
	// its trigger; restart if the pool is still shallow.
	if depth < b.opts.low() && !b.stopping() {
		b.maybeRefill(p)
	}
}

// push appends a generated pair, honouring the capacity bound. Session
// pairs are persisted to the store first (memory-only on store failure:
// a broken disk degrades durability, not serving); a pair dropped at the
// capacity bound claims its fresh record back so disk mirrors memory.
func (b *Bank) push(p *pool, pair Pair) {
	e := poolEntry{pair: pair}
	if st := b.opts.Store; st != nil && p.custom == nil {
		server, sok := pair.Server.(*core.ServerCorr)
		client, cok := pair.Client.(*core.ClientCorr)
		if sok && cok {
			id := NewCorrID()
			if err := st.Append(Scope{Key: p.key}, id, EncodePair(server, client)); err != nil {
				b.observe(Event{Kind: "persist-error", Key: p.key, Err: err})
			} else {
				e.persistID = id
			}
		}
	}
	cap := b.opts.capacity()
	p.mu.Lock()
	kept := len(p.entries) < cap
	if kept {
		p.entries = append(p.entries, e)
	}
	depth := len(p.entries)
	p.mu.Unlock()
	if !kept && e.persistID != 0 {
		_, _, _ = b.opts.Store.ClaimByID(Scope{Key: p.key}, e.persistID)
	}
	b.refills.Add(1)
	b.observe(Event{Kind: "refill", Key: p.key, Depth: depth})
}

// generateOne produces one pair for p. Generation per pool is serialized
// (deterministic stream consumption); distinct pools generate
// concurrently.
func (b *Bank) generateOne(p *pool) (Pair, error) {
	p.genMu.Lock()
	defer p.genMu.Unlock()
	if err := b.ctx.Err(); err != nil {
		return Pair{}, fmt.Errorf("bank: closed")
	}
	sp := p.tr.Start("bank-refill").SetBatch(p.key.Batch)
	pair, err := p.generate(b.ctx)
	sp.End(err)
	return pair, err
}

func (b *Bank) observe(ev Event) {
	if b.opts.Observer != nil {
		b.opts.Observer.BankEvent(ev)
	}
}
