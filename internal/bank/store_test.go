package bank

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// Store unit suite: the durable pool store's crash-safety contract —
// claim-before-use tombstoning across reopen, torn-tail truncation,
// corrupt-segment quarantine, and fail-closed journal recovery — all
// exercised through the same reopen path a real restart takes.

func testScope(peer PeerID) Scope {
	return Scope{Peer: peer, Key: Key{Model: "m-test", Scheme: "4(2,2)",
		RingBits: 32, Batch: 2, Backend: SessionBackend}}
}

// openRecovered opens a store on dir and runs recovery, failing the test
// on any error.
func openRecovered(t *testing.T, dir string, opts StoreOptions) (*Store, RecoverStats) {
	t.Helper()
	opts.Dir = dir
	s, err := OpenStore(opts)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	stats, err := s.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return s, stats
}

// segPath returns the single segment file of the scope's pool dir.
func segPath(t *testing.T, dir string, scope Scope) string {
	t.Helper()
	pool := filepath.Join(dir, poolsDir, scope.dirName())
	matches, err := filepath.Glob(filepath.Join(pool, segPrefix+"*"+segSuffix))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segment files under %s (err=%v)", pool, err)
	}
	return matches[len(matches)-1]
}

func TestStoreRefusesOpsBeforeRecover(t *testing.T) {
	s, err := OpenStore(StoreOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(testScope(NoPeer), 1, []byte{1}); !errors.Is(err, ErrNotRecovered) {
		t.Fatalf("Append before Recover: %v, want ErrNotRecovered", err)
	}
	if _, _, _, err := s.Draw(testScope(NoPeer)); !errors.Is(err, ErrNotRecovered) {
		t.Fatalf("Draw before Recover: %v, want ErrNotRecovered", err)
	}
}

func TestStorePeerIDPersists(t *testing.T) {
	dir := t.TempDir()
	s1, _ := openRecovered(t, dir, StoreOptions{})
	p1 := s1.PeerID()
	if p1 == NoPeer {
		t.Fatal("fresh store minted the zero peer id")
	}
	s1.Close()
	s2, _ := openRecovered(t, dir, StoreOptions{})
	defer s2.Close()
	if s2.PeerID() != p1 {
		t.Fatalf("peer id changed across reopen: %s -> %s", p1, s2.PeerID())
	}
}

// TestStoreClaimSurvivesReopen is the core single-use property: a
// correlation drawn (claimed) before a crash must be gone after
// recovery, and the ones not drawn must all still be there.
func TestStoreClaimSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	scope := testScope(NoPeer)
	s1, _ := openRecovered(t, dir, StoreOptions{})
	blobs := map[uint64][]byte{}
	for i := 1; i <= 5; i++ {
		id := uint64(i)
		blob := bytes.Repeat([]byte{byte(i)}, i*3)
		blobs[id] = blob
		if err := s1.Append(scope, id, blob); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	id, _, ok, err := s1.Draw(scope)
	if err != nil || !ok {
		t.Fatalf("draw: ok=%v err=%v", ok, err)
	}
	if _, ok, err := s1.ClaimByID(scope, 3); err != nil || !ok {
		t.Fatalf("claim 3: ok=%v err=%v", ok, err)
	}
	// Abandon s1 without Close or Sync: FsyncEvery defaults to 1, so both
	// claims must already be durable — this is the SIGKILL model.
	s2, stats := openRecovered(t, dir, StoreOptions{})
	defer s2.Close()
	if stats.Records != 3 || stats.Claimed != 2 {
		t.Fatalf("recovered %d records, %d claimed; want 3 and 2", stats.Records, stats.Claimed)
	}
	if _, ok, _ := s2.ClaimByID(scope, id); ok {
		t.Fatalf("correlation %d claimable again after reopen — double use", id)
	}
	if _, ok, _ := s2.ClaimByID(scope, 3); ok {
		t.Fatal("correlation 3 claimable again after reopen — double use")
	}
	recs, err := s2.Records(scope)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.ID == id || r.ID == 3 {
			t.Fatalf("claimed id %d still listed after recovery", r.ID)
		}
		if !bytes.Equal(r.Blob, blobs[r.ID]) {
			t.Fatalf("record %d blob corrupted across reopen", r.ID)
		}
	}
	if len(recs) != 3 {
		t.Fatalf("%d records survive, want 3", len(recs))
	}
}

// TestStoreTornTailTruncated: a record half-written at crash time is
// truncated away on recovery; every complete record before it survives.
func TestStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	scope := testScope(NoPeer)
	s1, _ := openRecovered(t, dir, StoreOptions{})
	for i := 1; i <= 3; i++ {
		if err := s1.Append(scope, uint64(i), []byte{byte(i), 0xEE}); err != nil {
			t.Fatal(err)
		}
	}
	s1.Close()
	seg := segPath(t, dir, scope)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	s2, stats := openRecovered(t, dir, StoreOptions{})
	defer s2.Close()
	if stats.TornTails != 1 {
		t.Fatalf("TornTails = %d, want 1", stats.TornTails)
	}
	if stats.Records != 2 || stats.Quarantined != 0 {
		t.Fatalf("recovered %d records (%d quarantined), want 2 (0)", stats.Records, stats.Quarantined)
	}
	if fi2, _ := os.Stat(seg); fi2 != nil && fi2.Size() >= fi.Size()-3 {
		// the torn tail must be physically gone so the fresh segment never
		// collides with stale bytes
		t.Fatalf("torn tail not truncated: %d bytes, had %d", fi2.Size(), fi.Size()-3)
	}
}

// TestStoreCorruptSegmentQuarantined: a complete record whose CRC does
// not match means real corruption, not a crash mid-write; the whole
// segment is moved aside, never deleted, and recovery proceeds.
func TestStoreCorruptSegmentQuarantined(t *testing.T) {
	dir := t.TempDir()
	scope := testScope(NoPeer)
	s1, _ := openRecovered(t, dir, StoreOptions{})
	for i := 1; i <= 3; i++ {
		if err := s1.Append(scope, uint64(i), bytes.Repeat([]byte{byte(i)}, 16)); err != nil {
			t.Fatal(err)
		}
	}
	s1.Close()
	seg := segPath(t, dir, scope)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-40] ^= 0x5A // mid-payload of an interior record
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, stats := openRecovered(t, dir, StoreOptions{})
	defer s2.Close()
	if stats.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", stats.Quarantined)
	}
	if stats.Records != 0 {
		t.Fatalf("corrupt segment contributed %d records", stats.Records)
	}
	quar, err := filepath.Glob(filepath.Join(dir, quarDir, "*"))
	if err != nil || len(quar) != 1 {
		t.Fatalf("quarantine dir holds %d files (err=%v), want the segment", len(quar), err)
	}
	if _, err := os.Stat(seg); !os.IsNotExist(err) {
		t.Fatalf("corrupt segment still in the pool dir: %v", err)
	}
}

// TestStoreJournalFailClosed: corruption in the middle of the claim
// journal makes the claim set unknowable, so the store must refuse to
// serve at all rather than risk double-spending a correlation.
func TestStoreJournalFailClosed(t *testing.T) {
	dir := t.TempDir()
	scope := testScope(NoPeer)
	s1, _ := openRecovered(t, dir, StoreOptions{})
	for i := 1; i <= 4; i++ {
		if err := s1.Append(scope, uint64(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 3; i++ {
		if _, ok, err := s1.ClaimByID(scope, uint64(i)); err != nil || !ok {
			t.Fatalf("claim %d: ok=%v err=%v", i, ok, err)
		}
	}
	s1.Close()
	jp := filepath.Join(dir, journalF)
	data, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the FIRST entry: not a torn tail, unambiguous
	// corruption.
	data[len(data)-3*journalEntrySize+4] ^= 0xFF
	if err := os.WriteFile(jp, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Recover(); err == nil {
		t.Fatal("recovery over a corrupt journal succeeded; must fail closed")
	}
	if err := s2.Append(scope, 99, []byte{9}); err == nil {
		t.Fatal("Append succeeded on a failed store")
	}
	if _, _, _, err := s2.Draw(scope); err == nil {
		t.Fatal("Draw succeeded on a failed store")
	}
}

// TestStoreJournalTornTailTolerated: a partial trailing journal entry is
// a crash mid-claim — the claim never reached the caller (the journal
// write precedes use), so truncating it is safe and recovery proceeds.
func TestStoreJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	scope := testScope(NoPeer)
	s1, _ := openRecovered(t, dir, StoreOptions{})
	for i := 1; i <= 3; i++ {
		if err := s1.Append(scope, uint64(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, err := s1.ClaimByID(scope, 1); err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	s1.Close()
	jp := filepath.Join(dir, journalF)
	fi, err := os.Stat(jp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(jp, fi.Size()+journalEntrySize/2); err == nil {
		// extend with zero bytes: a torn trailing entry
	} else {
		t.Fatal(err)
	}
	s2, stats := openRecovered(t, dir, StoreOptions{})
	defer s2.Close()
	if stats.Claimed != 1 || stats.Records != 2 {
		t.Fatalf("recovered claimed=%d records=%d, want 1 and 2", stats.Claimed, stats.Records)
	}
	if stats.TornTails != 1 {
		t.Fatalf("TornTails = %d, want 1 (journal tail)", stats.TornTails)
	}
}

// TestStoreSegmentRotation: appends past SegmentMaxBytes rotate to new
// segment files, and recovery reassembles the pool from all of them.
func TestStoreSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	scope := testScope(NoPeer)
	s1, _ := openRecovered(t, dir, StoreOptions{SegmentMaxBytes: 128})
	for i := 1; i <= 6; i++ {
		if err := s1.Append(scope, uint64(i), bytes.Repeat([]byte{byte(i)}, 48)); err != nil {
			t.Fatal(err)
		}
	}
	s1.Close()
	pool := filepath.Join(dir, poolsDir, scope.dirName())
	segs, _ := filepath.Glob(filepath.Join(pool, segPrefix+"*"+segSuffix))
	if len(segs) < 2 {
		t.Fatalf("%d segment files after rotation, want >= 2", len(segs))
	}
	s2, stats := openRecovered(t, dir, StoreOptions{})
	defer s2.Close()
	if stats.Records != 6 || stats.Segments != len(segs) {
		t.Fatalf("recovered %d records over %d segments, want 6 over %d",
			stats.Records, stats.Segments, len(segs))
	}
}

// TestStoreFsyncCadence: FsyncEvery batches journal fsyncs; Sync flushes
// the remainder.
func TestStoreFsyncCadence(t *testing.T) {
	var mu sync.Mutex
	fsyncs := 0
	obs := observerFunc(func(ev Event) {
		if ev.Kind == "persist-journal-fsync" {
			mu.Lock()
			fsyncs++
			mu.Unlock()
		}
	})
	dir := t.TempDir()
	scope := testScope(NoPeer)
	s, _ := openRecovered(t, dir, StoreOptions{FsyncEvery: 3, Observer: obs})
	defer s.Close()
	for i := 1; i <= 7; i++ {
		if err := s.Append(scope, uint64(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 7; i++ {
		if _, ok, err := s.ClaimByID(scope, uint64(i)); err != nil || !ok {
			t.Fatalf("claim %d: ok=%v err=%v", i, ok, err)
		}
	}
	mu.Lock()
	after := fsyncs
	mu.Unlock()
	if after != 2 { // claims 3 and 6
		t.Fatalf("%d journal fsyncs after 7 claims at FsyncEvery=3, want 2", after)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	final := fsyncs
	mu.Unlock()
	if final != 3 {
		t.Fatalf("%d journal fsyncs after Sync, want 3", final)
	}
}

// observerFunc adapts a func to the Observer interface for tests.
type observerFunc func(Event)

func (f observerFunc) BankEvent(ev Event) { f(ev) }

func TestStoreDrawIsFIFO(t *testing.T) {
	dir := t.TempDir()
	scope := testScope(NoPeer)
	s, _ := openRecovered(t, dir, StoreOptions{})
	defer s.Close()
	for i := 1; i <= 3; i++ {
		if err := s.Append(scope, uint64(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for want := uint64(1); want <= 3; want++ {
		id, blob, ok, err := s.Draw(scope)
		if err != nil || !ok {
			t.Fatalf("draw %d: ok=%v err=%v", want, ok, err)
		}
		if id != want || blob[0] != byte(want) {
			t.Fatalf("draw returned id %d, want %d (FIFO)", id, want)
		}
	}
	if _, _, ok, _ := s.Draw(scope); ok {
		t.Fatal("draw from an empty pool succeeded")
	}
}

func TestScopeRoundTrip(t *testing.T) {
	var peer PeerID
	copy(peer[:], bytes.Repeat([]byte{0xAB}, 16))
	for _, sc := range []Scope{testScope(NoPeer), testScope(peer)} {
		got, err := ParseScope(sc.String())
		if err != nil {
			t.Fatalf("parse %q: %v", sc.String(), err)
		}
		if got != sc {
			t.Fatalf("scope round trip: %v != %v", got, sc)
		}
	}
	for _, bad := range []string{
		"", "v2 peer=x", "v1 peer=zz model=m scheme=s l=32 batch=1 backend=b",
		"v1 peer=" + NoPeer.String() + " model=m scheme=s l=7 batch=1 backend=b",
	} {
		if _, err := ParseScope(bad); err == nil {
			t.Fatalf("ParseScope(%q) accepted garbage", bad)
		}
	}
}

func TestNewCorrIDUnique(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewCorrID()
		if id == 0 || seen[id] {
			t.Fatalf("NewCorrID returned %d (dup or zero) after %d draws", id, i)
		}
		seen[id] = true
	}
}
