package bank

import (
	"fmt"

	"abnn2/internal/core"
)

// This file is the bank's durable API surface: restart restore of dealer
// pools, and the peer-paired pools that replace the in-process trusted
// dealer for genuinely remote client/server pairs (see remote.go for the
// wire protocol that fills them).

// Store returns the bank's durable store, nil for a memory-only bank.
func (b *Bank) Store() *Store { return b.opts.Store }

// Restore reloads persisted dealer pairs into their in-memory pools
// after a restart. Only scopes whose model is registered are loaded
// (others stay on disk untouched); pools are filled past Capacity if the
// store holds more — capacity bounds generation, not what survived.
// Undecodable records are tombstoned so they are not retried forever.
// Call after RegisterModel and after the store's Recover.
func (b *Bank) Restore() (int, error) {
	st := b.opts.Store
	if st == nil {
		return 0, nil
	}
	n := 0
	for _, scope := range st.Scopes() {
		if scope.Peer != NoPeer || scope.Key.Backend != SessionBackend {
			continue
		}
		p := b.lookup(scope.Key)
		if p == nil {
			continue
		}
		recs, err := st.Records(scope)
		if err != nil {
			return n, err
		}
		for _, r := range recs {
			server, client, derr := DecodePair(r.Blob)
			if derr == nil && server.Batch != scope.Key.Batch {
				derr = fmt.Errorf("bank: restored pair batch %d does not match scope batch %d", server.Batch, scope.Key.Batch)
			}
			if derr != nil {
				b.observe(Event{Kind: "persist-decode-error", Key: scope.Key, Err: derr})
				_, _, _ = st.ClaimByID(scope, r.ID)
				continue
			}
			p.mu.Lock()
			p.entries = append(p.entries, poolEntry{
				pair:      Pair{Server: server, Client: client},
				persistID: r.ID,
			})
			depth := len(p.entries)
			p.mu.Unlock()
			n++
			b.observe(Event{Kind: "restore", Key: scope.Key, Depth: depth})
		}
	}
	return n, nil
}

// PutPeerClient durably stores the client half of a peer-paired
// correlation generated with the server identified by peer (the
// client-side commit of one remote offline round).
func (b *Bank) PutPeerClient(peer PeerID, key Key, id uint64, c *core.ClientCorr) error {
	st := b.opts.Store
	if st == nil {
		return fmt.Errorf("bank: no durable store")
	}
	return st.Append(Scope{Peer: peer, Key: key}, id, EncodeClientCorr(c))
}

// PutPeerServer durably stores the server half of a peer-paired
// correlation generated with the client identified by peer.
func (b *Bank) PutPeerServer(peer PeerID, key Key, id uint64, c *core.ServerCorr) error {
	st := b.opts.Store
	if st == nil {
		return fmt.Errorf("bank: no durable store")
	}
	return st.Append(Scope{Peer: peer, Key: key}, id, EncodeServerCorr(c))
}

// AcquirePeer draws (and durably claims) the oldest client half paired
// with the server identified by peer. The returned id is the correlation
// id the client announces in-band; the server looks the matching half up
// under the client's own peer id via ClaimPeer. ok is false when the
// peer pool is dry — callers degrade to the dealer pool or inline.
func (b *Bank) AcquirePeer(peer PeerID, key Key) (id uint64, clientHalf *core.ClientCorr, ok bool) {
	st := b.opts.Store
	if st == nil {
		return 0, nil, false
	}
	scope := Scope{Peer: peer, Key: key}
	for {
		id, blob, ok, err := st.Draw(scope)
		if err != nil || !ok {
			if err != nil {
				b.observe(Event{Kind: "persist-claim-drop", Key: key, Err: err})
			}
			b.observe(Event{Kind: "peer-miss", Key: key})
			return 0, nil, false
		}
		c, derr := DecodeClientCorr(blob)
		if derr != nil {
			// Already claimed; just skip it and try the next record.
			b.observe(Event{Kind: "persist-decode-error", Key: key, Err: derr})
			continue
		}
		b.observe(Event{Kind: "peer-hit", Key: key, Depth: st.Depth(scope)})
		return id, c, true
	}
}

// ClaimPeer durably claims the server half stored under the announcing
// client's peer id and the announced correlation id. Single-use: the
// claim journal entry lands before the half is returned, so the same id
// can never back two online phases even across SIGKILL.
func (b *Bank) ClaimPeer(peer PeerID, id uint64, key Key) (serverHalf *core.ServerCorr, ok bool) {
	st := b.opts.Store
	if st == nil {
		return nil, false
	}
	scope := Scope{Peer: peer, Key: key}
	blob, ok, err := st.ClaimByID(scope, id)
	if err != nil || !ok {
		if err != nil {
			b.observe(Event{Kind: "persist-claim-drop", Key: key, Err: err})
		}
		b.observe(Event{Kind: "peer-claim-miss", Key: key})
		return nil, false
	}
	c, derr := DecodeServerCorr(blob)
	if derr != nil {
		b.observe(Event{Kind: "persist-decode-error", Key: key, Err: derr})
		b.observe(Event{Kind: "peer-claim-miss", Key: key})
		return nil, false
	}
	b.observe(Event{Kind: "peer-claim", Key: key})
	return c, true
}

// PeerDepth returns the number of unclaimed halves stored under the
// (peer, key) pool — the replenisher's watermark input.
func (b *Bank) PeerDepth(peer PeerID, key Key) int {
	st := b.opts.Store
	if st == nil {
		return 0
	}
	return st.Depth(Scope{Peer: peer, Key: key})
}
