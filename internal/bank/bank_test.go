package bank

import (
	"context"
	"fmt"
	"testing"
	"time"

	"abnn2/internal/core"
	"abnn2/internal/nn"
	"abnn2/internal/prg"
	"abnn2/internal/quant"
)

// testModel returns a small quantized MLP (GC junction + linear head),
// enough to exercise every correlation component (R0, V, Z1, U).
func testModel(t *testing.T) *nn.QuantizedModel {
	t.Helper()
	m := nn.NewModel(6, 5, 3)
	m.InitXavier(prg.New(prg.SeedFromInt(7)))
	s, err := quant.Parse("4(2,2)")
	if err != nil {
		t.Fatalf("parse scheme: %v", err)
	}
	return nn.Quantize(m, s, 6)
}

func sessionKey(t *testing.T, b *Bank, qm *nn.QuantizedModel, batch int) Key {
	t.Helper()
	id, err := b.RegisterModel(qm)
	if err != nil {
		t.Fatalf("register model: %v", err)
	}
	return Key{Model: id, Scheme: qm.Layers[0].Scheme.Name(), RingBits: 32, Batch: batch, Backend: SessionBackend}
}

func TestBankAcquireClaimRoundTrip(t *testing.T) {
	b := New(Options{Capacity: 2, Seed: 11})
	defer b.Close()
	qm := testModel(t)
	key := sessionKey(t, b, qm, 2)
	if err := b.Prewarm(key, 2); err != nil {
		t.Fatalf("prewarm: %v", err)
	}
	if d := b.Depth(key); d != 2 {
		t.Fatalf("depth after prewarm = %d, want 2", d)
	}
	id, clientHalf, ok := b.Acquire(key)
	if !ok {
		t.Fatalf("acquire missed a warm pool")
	}
	ccorr, ok := clientHalf.(*core.ClientCorr)
	if !ok || ccorr.Batch != 2 {
		t.Fatalf("client half = %T batch %v, want *core.ClientCorr batch 2", clientHalf, ccorr)
	}
	// A claim under the wrong key must miss and leave the half parked.
	wrong := key
	wrong.Batch = 3
	if _, ok := b.Claim(id, wrong); ok {
		t.Fatalf("claim with mismatched key succeeded")
	}
	serverHalf, ok := b.Claim(id, key)
	if !ok {
		t.Fatalf("claim missed")
	}
	scorr, ok := serverHalf.(*core.ServerCorr)
	if !ok || scorr.Batch != 2 {
		t.Fatalf("server half = %T, want *core.ServerCorr batch 2", serverHalf)
	}
	// Single-use: the ID is spent.
	if _, ok := b.Claim(id, key); ok {
		t.Fatalf("second claim of the same ID succeeded")
	}
	// The pair really is a correlation: U + V = W * R0 for layer 0.
	rg := core.Params{}.Ring // zero value unusable; rebuild
	p, err := sessionParams(qm, key, 0)
	if err != nil {
		t.Fatalf("params: %v", err)
	}
	rg = p.Ring
	w := qm.Layers[0].WMat(rg)
	want := rg.MulMat(w, ccorr.R0)
	got := rg.AddMat(scorr.U[0].Clone(), ccorr.V[0])
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("U+V != W*R0 at %d: %d vs %d", i, got.Data[i], want.Data[i])
		}
	}
}

func TestBankDistinctPairsPerDraw(t *testing.T) {
	b := New(Options{Capacity: 2, Seed: 3})
	defer b.Close()
	qm := testModel(t)
	key := sessionKey(t, b, qm, 1)
	if err := b.Prewarm(key, 2); err != nil {
		t.Fatalf("prewarm: %v", err)
	}
	_, h1, ok1 := b.Acquire(key)
	_, h2, ok2 := b.Acquire(key)
	if !ok1 || !ok2 {
		t.Fatalf("acquires missed: %v %v", ok1, ok2)
	}
	r1 := h1.(*core.ClientCorr).R0
	r2 := h2.(*core.ClientCorr).R0
	same := true
	for i := range r1.Data {
		if r1.Data[i] != r2.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("two draws returned identical input masks (correlation reuse)")
	}
}

func TestBankDeterministicSeeding(t *testing.T) {
	qm := testModel(t)
	draw := func() (*core.ClientCorr, *core.ServerCorr) {
		b := New(Options{Capacity: 2, Seed: 99})
		defer b.Close()
		key := sessionKey(t, b, qm, 2)
		if err := b.Prewarm(key, 1); err != nil {
			t.Fatalf("prewarm: %v", err)
		}
		id, c, ok := b.Acquire(key)
		if !ok {
			t.Fatalf("acquire missed")
		}
		s, ok := b.Claim(id, key)
		if !ok {
			t.Fatalf("claim missed")
		}
		return c.(*core.ClientCorr), s.(*core.ServerCorr)
	}
	c1, s1 := draw()
	c2, s2 := draw()
	for i := range c1.R0.Data {
		if c1.R0.Data[i] != c2.R0.Data[i] {
			t.Fatalf("seeded banks disagree on R0[%d]", i)
		}
	}
	for li := range s1.U {
		for i := range s1.U[li].Data {
			if s1.U[li].Data[i] != s2.U[li].Data[i] {
				t.Fatalf("seeded banks disagree on U[%d][%d]", li, i)
			}
		}
	}
}

func TestBankWatermarkRefill(t *testing.T) {
	b := New(Options{Capacity: 4, Low: 2, Seed: 5})
	defer b.Close()
	qm := testModel(t)
	key := sessionKey(t, b, qm, 1)
	if err := b.Prewarm(key, 4); err != nil {
		t.Fatalf("prewarm: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, _, ok := b.Acquire(key); !ok {
			t.Fatalf("acquire %d missed", i)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for b.Depth(key) < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("pool not replenished to capacity, depth %d", b.Depth(key))
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := b.Snapshot()
	if st.Refills < 7 { // 4 prewarm + >=3 background
		t.Fatalf("refills = %d, want >= 7", st.Refills)
	}
	if st.Hits != 3 {
		t.Fatalf("hits = %d, want 3", st.Hits)
	}
}

func TestBankMissPaths(t *testing.T) {
	b := New(Options{Capacity: 2, Seed: 5})
	defer b.Close()
	qm := testModel(t)
	key := sessionKey(t, b, qm, 1)

	unknown := key
	unknown.Model = "feedfacefeedface"
	if _, _, ok := b.Acquire(unknown); ok {
		t.Fatalf("acquire for unregistered model succeeded")
	}
	badScheme := key
	badScheme.Scheme = "binary"
	if _, _, ok := b.Acquire(badScheme); ok {
		t.Fatalf("acquire with mismatched scheme succeeded")
	}
	badBatch := key
	badBatch.Batch = -1
	if _, _, ok := b.Acquire(badBatch); ok {
		t.Fatalf("acquire with negative batch succeeded")
	}
	// Dry pool: first touch misses but warms in the background.
	if _, _, ok := b.Acquire(key); ok {
		t.Fatalf("acquire on a cold pool succeeded")
	}
	deadline := time.Now().Add(30 * time.Second)
	for b.Depth(key) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("miss did not trigger background warming")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := b.Snapshot(); st.Misses < 4 {
		t.Fatalf("misses = %d, want >= 4", st.Misses)
	}
}

func TestBankCustomProducerFIFO(t *testing.T) {
	b := New(Options{Capacity: 4, Seed: 2})
	defer b.Close()
	key := Key{Model: "custom", Scheme: "4(2,2)", RingBits: 32, Batch: 1, Backend: "test-backend"}
	n := 0
	err := b.RegisterProducer(key, func(*prg.PRG) (Pair, error) {
		p := Pair{Server: fmt.Sprintf("s%d", n), Client: fmt.Sprintf("c%d", n)}
		n++
		return p, nil
	})
	if err != nil {
		t.Fatalf("register producer: %v", err)
	}
	if err := b.RegisterProducer(key, func(*prg.PRG) (Pair, error) { return Pair{}, nil }); err == nil {
		t.Fatalf("duplicate producer registration succeeded")
	}
	sessionKey := key
	sessionKey.Backend = SessionBackend
	if err := b.RegisterProducer(sessionKey, func(*prg.PRG) (Pair, error) { return Pair{}, nil }); err == nil {
		t.Fatalf("producer registration under the session backend succeeded")
	}
	if err := b.Prewarm(key, 3); err != nil {
		t.Fatalf("prewarm: %v", err)
	}
	for i := 0; i < 3; i++ {
		id, c, ok := b.Acquire(key)
		if !ok {
			t.Fatalf("acquire %d missed", i)
		}
		if want := fmt.Sprintf("c%d", i); c != want {
			t.Fatalf("draw %d returned %v, want %v (FIFO order)", i, c, want)
		}
		s, ok := b.Claim(id, key)
		if !ok || s != fmt.Sprintf("s%d", i) {
			t.Fatalf("claim %d returned %v/%v", i, s, ok)
		}
	}
}

func TestBankProducerErrorSurfacesOnPrewarm(t *testing.T) {
	b := New(Options{Capacity: 2})
	defer b.Close()
	key := Key{Model: "x", Backend: "flaky"}
	if err := b.RegisterProducer(key, func(*prg.PRG) (Pair, error) {
		return Pair{}, fmt.Errorf("boom")
	}); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := b.Prewarm(key, 1); err == nil {
		t.Fatalf("prewarm swallowed a producer error")
	}
}

func TestBankDrainAndClose(t *testing.T) {
	b := New(Options{Capacity: 8, Low: 8, Seed: 4})
	qm := testModel(t)
	key := sessionKey(t, b, qm, 2)
	if err := b.Prewarm(key, 1); err != nil {
		t.Fatalf("prewarm: %v", err)
	}
	// Pop the only entry: depth 0 < low triggers a background refill of
	// up to 7 more pairs, which Close must be able to interrupt.
	if _, _, ok := b.Acquire(key); !ok {
		t.Fatalf("acquire missed")
	}
	done := make(chan struct{})
	go func() {
		_ = b.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("Close hung with a replenishment in flight")
	}
	if _, _, ok := b.Acquire(key); ok {
		t.Fatalf("acquire succeeded after Close")
	}
	if err := b.Prewarm(key, 1); err == nil {
		t.Fatalf("prewarm succeeded after Close")
	}
	if _, err := b.RegisterModel(qm); err == nil {
		t.Fatalf("register succeeded after Close")
	}
	// Close is idempotent.
	if err := b.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestBankDrainWaitsForRefill(t *testing.T) {
	b := New(Options{Capacity: 2, Low: 2, Seed: 6})
	defer b.Close()
	qm := testModel(t)
	key := sessionKey(t, b, qm, 1)
	if err := b.Prewarm(key, 1); err != nil {
		t.Fatalf("prewarm: %v", err)
	}
	if _, _, ok := b.Acquire(key); !ok {
		t.Fatalf("acquire missed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := b.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// After a drain no new refills start: depth stays wherever it landed.
	d := b.Depth(key)
	if _, _, ok := b.Acquire(key); ok != (d > 0) {
		t.Fatalf("post-drain acquire ok=%v with depth %d", ok, d)
	}
	time.Sleep(20 * time.Millisecond)
	if after := b.Depth(key); after > d {
		t.Fatalf("pool refilled after Drain: %d -> %d", d, after)
	}
}
