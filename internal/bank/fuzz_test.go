package bank

import (
	"bytes"
	"testing"

	"abnn2/internal/core"
	"abnn2/internal/ring"
)

// Fuzz targets for the durable store's disk parsers. A store directory
// may be restored from backup, shared between operators, or tampered
// with, so the parsers must never panic, never allocate from a hostile
// length field, and must report torn tails with an in-bounds keep
// offset (recovery truncates to it).

// FuzzScanSegment: arbitrary segment images must scan without panicking,
// and a torn-tail verdict must carry a keep offset recovery can truncate
// to safely.
func FuzzScanSegment(f *testing.F) {
	scope := Scope{Key: Key{Model: "m", Scheme: "4(2,2)", RingBits: 32,
		Batch: 2, Backend: "fuzz"}}
	img := AppendSegmentHeader(nil, scope.String())
	img = AppendSegmentRecord(img, 7, []byte{KindServerHalf, 1, 2, 3})
	f.Add(img)
	f.Add(img[:len(img)-3])             // torn record tail
	f.Add(img[:5])                      // torn header
	f.Add([]byte("ABNN2SG1"))           // header magic only
	f.Add([]byte("NOTMAGIC________"))   // wrong magic
	f.Add(AppendSegmentHeader(nil, "")) // empty scope line
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, recs, keep, err := scanSegment(data)
		if err == errTorn {
			if keep < 0 || keep > int64(len(data)) {
				t.Fatalf("torn keep offset %d out of [0, %d]", keep, len(data))
			}
			// Everything before the tear must scan cleanly after truncation.
			if keep > 0 {
				if _, _, _, err2 := scanSegment(data[:keep]); err2 != nil {
					t.Fatalf("truncated-to-keep image still fails: %v", err2)
				}
			}
		}
		for _, r := range recs {
			if len(r.blob) > maxRecordBytes {
				t.Fatalf("record %d blob of %d bytes exceeds bound", r.id, len(r.blob))
			}
		}
	})
}

// FuzzScanJournal: arbitrary journal images must scan without panicking;
// the torn-tail contract mirrors the segment scanner's.
func FuzzScanJournal(f *testing.F) {
	img := append([]byte{}, journalMagic...)
	img = AppendJournalEntry(img, 0xAB, 1)
	img = AppendJournalEntry(img, 0xAB, 2)
	f.Add(img)
	f.Add(img[:len(img)-journalEntrySize/2]) // torn last entry
	f.Add(append([]byte{}, journalMagic...))
	f.Add([]byte("ABNN2JN"))  // torn header
	f.Add([]byte("XXNN2JN1")) // wrong magic
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		claims, keep, err := scanJournal(data)
		if err == errTorn {
			if keep < 0 || keep > int64(len(data)) {
				t.Fatalf("torn keep offset %d out of [0, %d]", keep, len(data))
			}
			if keep > 0 {
				if _, _, err2 := scanJournal(data[:keep]); err2 != nil {
					t.Fatalf("truncated-to-keep journal still fails: %v", err2)
				}
			}
		}
		if err == nil {
			// A clean scan accounts for every byte in whole entries.
			n := 0
			for _, ids := range claims {
				n += len(ids)
			}
			if want := int64(len(journalMagic) + n*journalEntrySize); keep != want && n > 0 {
				// Duplicate entries collapse in the map; keep only has to be
				// entry-aligned and in bounds.
				if (keep-int64(len(journalMagic)))%journalEntrySize != 0 {
					t.Fatalf("clean scan ended off an entry boundary: keep=%d", keep)
				}
			}
		}
	})
}

// fuzzCorrPair builds a small but structurally complete correlation
// pair: two layers, a nil Z1 slot, non-trivial ring values.
func fuzzCorrPair() (*core.ServerCorr, *core.ClientCorr) {
	mat := func(rows, cols int, base uint64) *ring.Mat {
		m := ring.NewMat(rows, cols)
		for i := range m.Data {
			m.Data[i] = ring.Elem(base + uint64(i))
		}
		return m
	}
	s := &core.ServerCorr{Batch: 2, U: []*ring.Mat{mat(3, 2, 10), mat(2, 2, 90)}}
	c := &core.ClientCorr{
		Batch: 2,
		R0:    mat(3, 2, 7),
		V:     []*ring.Mat{mat(3, 2, 40), mat(2, 2, 50)},
		Z1:    []*ring.Mat{nil, mat(2, 2, 60)},
	}
	return s, c
}

// FuzzDecodeCorr: arbitrary correlation blobs must decode without
// panicking, and any blob that decodes must re-encode byte-identically
// (the codec is canonical — this is what makes the disk round trip of a
// peer-paired correlation bit-exact).
func FuzzDecodeCorr(f *testing.F) {
	s, c := fuzzCorrPair()
	f.Add(EncodeServerCorr(s))
	f.Add(EncodeClientCorr(c))
	f.Add(EncodePair(s, c))
	f.Add([]byte{KindServerHalf})
	f.Add([]byte{KindClientHalf, 2, 0, 0, 0})
	f.Add([]byte{KindPair, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{'X'})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeCorr(data)
		if err != nil {
			return // any error is acceptable; panics and OOM are not
		}
		var round []byte
		switch x := v.(type) {
		case *core.ServerCorr:
			round = EncodeServerCorr(x)
		case *core.ClientCorr:
			round = EncodeClientCorr(x)
		case Pair:
			sc, ok1 := x.Server.(*core.ServerCorr)
			cc, ok2 := x.Client.(*core.ClientCorr)
			if !ok1 || !ok2 {
				t.Fatalf("pair halves are %T / %T", x.Server, x.Client)
			}
			round = EncodePair(sc, cc)
		default:
			t.Fatalf("DecodeCorr returned unexpected type %T", v)
		}
		if !bytes.Equal(round, data) {
			t.Fatalf("decode/encode round trip not canonical: %d bytes in, %d out",
				len(data), len(round))
		}
	})
}
