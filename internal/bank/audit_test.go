package bank

import (
	"os"
	"path/filepath"
	"testing"
)

// TestAuditJournal: a clean journal audits with no dupes, a forged
// duplicate entry is reported with its multiplicity, and a torn tail is
// flagged without failing the audit.
func TestAuditJournal(t *testing.T) {
	dir := t.TempDir()
	st, _ := openRecovered(t, dir, StoreOptions{})
	scope := testScope(PeerID{})
	for i := uint64(1); i <= 3; i++ {
		if err := st.Append(scope, i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, _, ok, err := st.Draw(scope); !ok || err != nil {
			t.Fatalf("draw %d: ok=%v err=%v", i, ok, err)
		}
	}
	st.Close()

	res, err := AuditJournal(dir)
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	if res.Entries != 2 || len(res.Dupes) != 0 || res.TornTail {
		t.Fatalf("clean audit = %+v, want 2 entries, no dupes, no tear", res)
	}

	// Forge a double spend by re-appending the journal's first entry.
	path := filepath.Join(dir, journalF)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	first := data[len(journalMagic) : len(journalMagic)+journalEntrySize]
	forged := append(append([]byte{}, data...), first...)
	if err := os.WriteFile(path, forged, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err = AuditJournal(dir)
	if err != nil {
		t.Fatalf("audit of forged journal: %v", err)
	}
	if res.Entries != 3 || len(res.Dupes) != 1 || res.Dupes[0].Count != 2 {
		t.Fatalf("forged audit = %+v, want 3 entries and one x2 dupe", res)
	}

	// A torn tail (half an entry) is benign for the audit.
	torn := forged[:len(forged)-journalEntrySize/2]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err = AuditJournal(dir)
	if err != nil {
		t.Fatalf("audit of torn journal: %v", err)
	}
	if !res.TornTail || res.Entries != 2 {
		t.Fatalf("torn audit = %+v, want torn tail with 2 whole entries", res)
	}
}
