package paillier

import (
	"math/big"
	"testing"

	"abnn2/internal/prg"
)

func BenchmarkEncrypt1024(b *testing.B) {
	sk, err := GenerateKey(prg.New(prg.SeedFromInt(1)), 1024)
	if err != nil {
		b.Fatal(err)
	}
	rng := prg.New(prg.SeedFromInt(2))
	m := big.NewInt(123456789)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.PublicKey.Encrypt(rng, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt1024(b *testing.B) {
	sk, err := GenerateKey(prg.New(prg.SeedFromInt(3)), 1024)
	if err != nil {
		b.Fatal(err)
	}
	ct, err := sk.PublicKey.Encrypt(prg.New(prg.SeedFromInt(4)), big.NewInt(42))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sk.Decrypt(ct)
	}
}

func BenchmarkMulConstSmallExp(b *testing.B) {
	sk, err := GenerateKey(prg.New(prg.SeedFromInt(5)), 1024)
	if err != nil {
		b.Fatal(err)
	}
	pk := &sk.PublicKey
	ct, err := pk.Encrypt(prg.New(prg.SeedFromInt(6)), big.NewInt(42))
	if err != nil {
		b.Fatal(err)
	}
	k := big.NewInt(-117)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pk.MulConst(ct, k)
	}
}
