package paillier

import (
	"math/big"
	"testing"

	"abnn2/internal/prg"
)

// testKey generates a small deterministic key once for the whole package.
var testKey = mustKey()

func mustKey() *PrivateKey {
	sk, err := GenerateKey(prg.New(prg.SeedFromInt(1)), 512)
	if err != nil {
		panic(err)
	}
	return sk
}

func TestEncryptDecrypt(t *testing.T) {
	rng := prg.New(prg.SeedFromInt(2))
	pk := &testKey.PublicKey
	for _, m := range []int64{0, 1, 42, 1 << 40} {
		ct, err := pk.Encrypt(rng, big.NewInt(m))
		if err != nil {
			t.Fatalf("encrypt %d: %v", m, err)
		}
		if got := testKey.Decrypt(ct); got.Int64() != m {
			t.Fatalf("decrypt = %v, want %d", got, m)
		}
	}
}

func TestEncryptRejectsOutOfRange(t *testing.T) {
	rng := prg.New(prg.SeedFromInt(3))
	pk := &testKey.PublicKey
	if _, err := pk.Encrypt(rng, big.NewInt(-1)); err == nil {
		t.Error("negative plaintext accepted")
	}
	if _, err := pk.Encrypt(rng, pk.N); err == nil {
		t.Error("plaintext = N accepted")
	}
}

func TestHomomorphicAdd(t *testing.T) {
	rng := prg.New(prg.SeedFromInt(4))
	pk := &testKey.PublicKey
	a, _ := pk.Encrypt(rng, big.NewInt(1000))
	b, _ := pk.Encrypt(rng, big.NewInt(234))
	if got := testKey.Decrypt(pk.Add(a, b)); got.Int64() != 1234 {
		t.Fatalf("add = %v", got)
	}
	if got := testKey.Decrypt(pk.AddPlain(a, big.NewInt(9))); got.Int64() != 1009 {
		t.Fatalf("addplain = %v", got)
	}
}

func TestHomomorphicMulConst(t *testing.T) {
	rng := prg.New(prg.SeedFromInt(5))
	pk := &testKey.PublicKey
	a, _ := pk.Encrypt(rng, big.NewInt(77))
	if got := testKey.Decrypt(pk.MulConst(a, big.NewInt(13))); got.Int64() != 1001 {
		t.Fatalf("mulconst = %v", got)
	}
	// Negative constants wrap mod N: Dec = N - 77*2.
	neg := testKey.Decrypt(pk.MulConst(a, big.NewInt(-2)))
	want := new(big.Int).Sub(pk.N, big.NewInt(154))
	if neg.Cmp(want) != 0 {
		t.Fatalf("negative mulconst = %v", neg)
	}
}

// The MiniONN offline pattern: server evaluates w.r - u homomorphically.
func TestDotProductFlow(t *testing.T) {
	rng := prg.New(prg.SeedFromInt(6))
	pk := &testKey.PublicKey
	r := []int64{3, 5, 7}
	w := []int64{2, -1, 4}
	cts := make([]*Ciphertext, len(r))
	for i := range r {
		cts[i], _ = pk.Encrypt(rng, big.NewInt(r[i]))
	}
	u := int64(999)
	acc := pk.AddPlain(pk.MulConst(cts[0], big.NewInt(w[0])), big.NewInt(-u))
	for i := 1; i < len(r); i++ {
		acc = pk.Add(acc, pk.MulConst(cts[i], big.NewInt(w[i])))
	}
	got := testKey.Decrypt(acc)
	// 6 - 5 + 28 - 999 = -970 mod N.
	want := new(big.Int).Mod(big.NewInt(-970), pk.N)
	if got.Cmp(want) != 0 {
		t.Fatalf("dot flow = %v, want %v", got, want)
	}
}

func TestCiphertextMarshalRoundTrip(t *testing.T) {
	rng := prg.New(prg.SeedFromInt(7))
	pk := &testKey.PublicKey
	ct, _ := pk.Encrypt(rng, big.NewInt(31337))
	raw := pk.Marshal(ct)
	if len(raw) != pk.CiphertextBytes() {
		t.Fatalf("marshal length %d", len(raw))
	}
	ct2, err := pk.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if testKey.Decrypt(ct2).Int64() != 31337 {
		t.Fatal("roundtrip decrypt failed")
	}
	if _, err := pk.Unmarshal(raw[:len(raw)-1]); err == nil {
		t.Error("short ciphertext accepted")
	}
}

func TestPublicKeyMarshal(t *testing.T) {
	pk := &testKey.PublicKey
	pk2, err := UnmarshalPublicKey(MarshalPublicKey(pk))
	if err != nil {
		t.Fatal(err)
	}
	if pk2.N.Cmp(pk.N) != 0 || pk2.N2.Cmp(pk.N2) != 0 {
		t.Fatal("public key roundtrip mismatch")
	}
}

func TestDeterministicKeygen(t *testing.T) {
	a, err := GenerateKey(prg.New(prg.SeedFromInt(9)), 256)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateKey(prg.New(prg.SeedFromInt(9)), 256)
	if err != nil {
		t.Fatal(err)
	}
	if a.N.Cmp(b.N) != 0 {
		t.Error("same seed produced different keys")
	}
}

func TestGenerateKeyRejectsTinyModulus(t *testing.T) {
	if _, err := GenerateKey(prg.New(prg.SeedFromInt(10)), 64); err == nil {
		t.Error("64-bit modulus accepted")
	}
}
