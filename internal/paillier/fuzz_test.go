package paillier

import (
	"math/big"
	"testing"

	"abnn2/internal/prg"
)

// FuzzUnmarshalCiphertext checks the contract the MiniONN baseline's
// server phase relies on: any byte string Unmarshal accepts must survive
// the full homomorphic pipeline — including MulConst with a negative
// constant, whose modular inversion is only defined for units — and
// decrypt to something, without panicking.
func FuzzUnmarshalCiphertext(f *testing.F) {
	sk := testKey
	pk := &sk.PublicKey
	rng := prg.New(prg.SeedFromInt(99))
	valid, err := pk.Encrypt(rng, big.NewInt(1234))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pk.Marshal(valid))
	f.Add(make([]byte, pk.CiphertextBytes()))                 // zero: not a unit
	f.Add(pk.N.FillBytes(make([]byte, pk.CiphertextBytes()))) // multiple of N
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ct, err := pk.Unmarshal(data)
		if err != nil {
			return
		}
		out := pk.MulConst(ct, big.NewInt(-3))
		out = pk.AddPlain(out, big.NewInt(41))
		sk.Decrypt(out)
	})
}

// The hardening regression for the remotely-reachable MulConst panic:
// non-units must be stopped at the parsing boundary.
func TestUnmarshalRejectsNonUnits(t *testing.T) {
	pk := &testKey.PublicKey
	if _, err := pk.Unmarshal(make([]byte, pk.CiphertextBytes())); err == nil {
		t.Error("zero ciphertext accepted")
	}
	nBytes := pk.N.FillBytes(make([]byte, pk.CiphertextBytes()))
	if _, err := pk.Unmarshal(nBytes); err == nil {
		t.Error("ciphertext N (shares every factor of the modulus) accepted")
	}
	rng := prg.New(prg.SeedFromInt(100))
	ct, err := pk.Encrypt(rng, big.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pk.Unmarshal(pk.Marshal(ct)); err != nil {
		t.Errorf("valid ciphertext rejected: %v", err)
	}
}
