// Package paillier implements the Paillier additively homomorphic
// cryptosystem. It is the substrate for the MiniONN comparison baseline:
// MiniONN's offline phase has the client send encryptions of its random
// share r and the server homomorphically evaluate W*r - u. MiniONN uses a
// lattice SIMD scheme; any additively homomorphic encryption exercises
// the identical protocol flow (see DESIGN.md, "Substitutions").
package paillier

import (
	"fmt"
	"io"
	"math/big"
)

// PublicKey allows encryption and homomorphic operations.
type PublicKey struct {
	N  *big.Int // modulus
	N2 *big.Int // N^2, cached
}

// PrivateKey allows decryption.
type PrivateKey struct {
	PublicKey
	lambda *big.Int // lcm(p-1, q-1)
	mu     *big.Int // lambda^-1 mod N
}

// Ciphertext is a Paillier ciphertext (an element of Z_{N^2}^*).
type Ciphertext struct{ C *big.Int }

// GenerateKey creates a key pair with an n-bit modulus. randSrc supplies
// primality-candidate randomness; pass a seeded PRG for deterministic
// tests or crypto/rand.Reader for real keys.
func GenerateKey(randSrc io.Reader, bits int) (*PrivateKey, error) {
	if bits < 128 {
		return nil, fmt.Errorf("paillier: modulus of %d bits is too small", bits)
	}
	for {
		p, err := genPrime(randSrc, bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generating p: %w", err)
		}
		q, err := genPrime(randSrc, bits-bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generating q: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		p1 := new(big.Int).Sub(p, big.NewInt(1))
		q1 := new(big.Int).Sub(q, big.NewInt(1))
		gcd := new(big.Int).GCD(nil, nil, p1, q1)
		lambda := new(big.Int).Div(new(big.Int).Mul(p1, q1), gcd)
		mu := new(big.Int).ModInverse(lambda, n)
		if mu == nil {
			continue // lambda not invertible mod N; re-draw primes
		}
		return &PrivateKey{
			PublicKey: PublicKey{N: n, N2: new(big.Int).Mul(n, n)},
			lambda:    lambda,
			mu:        mu,
		}, nil
	}
}

// Encrypt encrypts m in [0, N) using randomness from randSrc. With
// generator g = N+1, Enc(m) = (1 + m*N) * r^N mod N^2.
func (pk *PublicKey) Encrypt(randSrc io.Reader, m *big.Int) (*Ciphertext, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, fmt.Errorf("paillier: plaintext out of [0, N)")
	}
	r, err := randUnit(randSrc, pk.N)
	if err != nil {
		return nil, err
	}
	// (1 + m*N) mod N^2
	gm := new(big.Int).Mul(m, pk.N)
	gm.Add(gm, big.NewInt(1))
	gm.Mod(gm, pk.N2)
	rn := new(big.Int).Exp(r, pk.N, pk.N2)
	c := gm.Mul(gm, rn)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}, nil
}

// Decrypt recovers the plaintext: L(c^lambda mod N^2) * mu mod N, with
// L(x) = (x-1)/N.
func (sk *PrivateKey) Decrypt(ct *Ciphertext) *big.Int {
	x := new(big.Int).Exp(ct.C, sk.lambda, sk.N2)
	x.Sub(x, big.NewInt(1))
	x.Div(x, sk.N)
	x.Mul(x, sk.mu)
	return x.Mod(x, sk.N)
}

// Add returns the encryption of the sum of the two plaintexts.
func (pk *PublicKey) Add(a, b *Ciphertext) *Ciphertext {
	c := new(big.Int).Mul(a.C, b.C)
	return &Ciphertext{C: c.Mod(c, pk.N2)}
}

// AddPlain returns Enc(m_a + k) without fresh randomness; callers must
// rerandomise (or fold in a random mask, as the MiniONN flow does) before
// the result leaves the party.
func (pk *PublicKey) AddPlain(a *Ciphertext, k *big.Int) *Ciphertext {
	gm := new(big.Int).Mul(new(big.Int).Mod(k, pk.N), pk.N)
	gm.Add(gm, big.NewInt(1))
	gm.Mod(gm, pk.N2)
	c := gm.Mul(gm, a.C)
	return &Ciphertext{C: c.Mod(c, pk.N2)}
}

// MulConst returns the encryption of k times the plaintext of a.
// Negative constants exponentiate by |k| and invert the result mod N^2:
// reducing k mod N instead would turn a small-weight multiplication into
// a full 1024-bit exponentiation (~200x slower), which dominates the
// MiniONN baseline's server phase.
func (pk *PublicKey) MulConst(a *Ciphertext, k *big.Int) *Ciphertext {
	if k.Sign() < 0 {
		abs := new(big.Int).Neg(k)
		c := new(big.Int).Exp(a.C, abs, pk.N2)
		if c.ModInverse(c, pk.N2) == nil {
			// A ciphertext is always a unit mod N^2 unless it shares a
			// factor with N, which would mean the modulus is factored.
			panic("paillier: non-invertible ciphertext")
		}
		return &Ciphertext{C: c}
	}
	return &Ciphertext{C: new(big.Int).Exp(a.C, k, pk.N2)}
}

// CiphertextBytes is the wire size of one ciphertext (2N bits).
func (pk *PublicKey) CiphertextBytes() int { return (pk.N2.BitLen() + 7) / 8 }

// Marshal serialises a ciphertext to fixed width.
func (pk *PublicKey) Marshal(ct *Ciphertext) []byte {
	return ct.C.FillBytes(make([]byte, pk.CiphertextBytes()))
}

// Unmarshal parses a fixed-width ciphertext. Beyond the range check it
// rejects non-units of Z_{N^2}: a valid ciphertext is always coprime to
// N, and a crafted non-unit (e.g. zero, or a multiple of a factor of N)
// would later make MulConst's modular inversion fail. The gcd costs
// microseconds against the milliseconds of the exponentiations that
// follow, so attacker-shaped bytes are cheap to screen here.
func (pk *PublicKey) Unmarshal(b []byte) (*Ciphertext, error) {
	if len(b) != pk.CiphertextBytes() {
		return nil, fmt.Errorf("paillier: ciphertext is %d bytes, want %d", len(b), pk.CiphertextBytes())
	}
	c := new(big.Int).SetBytes(b)
	if c.Cmp(pk.N2) >= 0 {
		return nil, fmt.Errorf("paillier: ciphertext out of range")
	}
	if new(big.Int).GCD(nil, nil, c, pk.N).Cmp(big.NewInt(1)) != 0 {
		return nil, fmt.Errorf("paillier: ciphertext is not a unit")
	}
	return &Ciphertext{C: c}, nil
}

// MarshalPublicKey serialises the modulus.
func MarshalPublicKey(pk *PublicKey) []byte { return pk.N.Bytes() }

// UnmarshalPublicKey parses a modulus.
func UnmarshalPublicKey(b []byte) (*PublicKey, error) {
	n := new(big.Int).SetBytes(b)
	if n.BitLen() < 128 {
		return nil, fmt.Errorf("paillier: modulus too small (%d bits)", n.BitLen())
	}
	return &PublicKey{N: n, N2: new(big.Int).Mul(n, n)}, nil
}

// genPrime draws random odd candidates of exactly `bits` bits from
// randSrc until one passes Miller-Rabin. Unlike crypto/rand.Prime it is
// fully deterministic for a deterministic reader (crypto/rand deliberately
// injects nondeterminism via randutil.MaybeReadByte), which the seeded
// benchmarks rely on.
func genPrime(randSrc io.Reader, bits int) (*big.Int, error) {
	bytes := (bits + 7) / 8
	buf := make([]byte, bytes)
	for {
		if _, err := io.ReadFull(randSrc, buf); err != nil {
			return nil, err
		}
		p := new(big.Int).SetBytes(buf)
		p.Rsh(p, uint(bytes*8-bits)) // trim to exactly `bits` bits
		p.SetBit(p, bits-1, 1)       // force exact bit length
		p.SetBit(p, 0, 1)            // force oddness
		if p.ProbablyPrime(20) {
			return p, nil
		}
	}
}

// randUnit samples r in [1, n) with gcd(r, n) = 1, deterministically for
// a deterministic reader (rejection sampling over full bytes).
func randUnit(randSrc io.Reader, n *big.Int) (*big.Int, error) {
	one := big.NewInt(1)
	buf := make([]byte, (n.BitLen()+7)/8)
	for {
		if _, err := io.ReadFull(randSrc, buf); err != nil {
			return nil, fmt.Errorf("paillier: sampling randomiser: %w", err)
		}
		r := new(big.Int).SetBytes(buf)
		if r.Sign() == 0 || r.Cmp(n) >= 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, n).Cmp(one) == 0 {
			return r, nil
		}
	}
}
