package abnn2

// Correlation-bank facade: the offline precompute service in
// internal/bank, re-exported for users of the public API. A bank
// pre-generates each session's data-independent material (OT-extension
// flights, per-layer matmul triplets, the client's future shares) off the
// request path; sessions configured with Config.Bank then draw a
// correlation pair instead of running the offline phase inline, so the
// online phase is round-trips plus matmul only.
//
// The bank is an in-process trusted dealer: both endpoints of a banked
// session must share the same *Bank instance (one process, or a load
// harness driving its own server). See DESIGN.md, "Offline correlation
// bank", for the security argument and the single-use guarantee.

import (
	"errors"

	"abnn2/internal/bank"
)

// ErrBankDry reports that a session required banked provisioning
// (OfflineBanked) and found its correlation pool empty. It is a
// retryable condition — the miss itself triggers background
// replenishment, so a caller that backs off briefly and retries the
// batch will usually find the pool warm. Test with errors.Is.
var ErrBankDry = errors.New("abnn2: correlation pool dry")

// BankSessionBackend is the BankKey.Backend under which full-session
// correlation pools live — the pools Config.Bank sessions draw from.
// Pools registered through RegisterBankProducer-style custom backends
// must use a different name.
const BankSessionBackend = bank.SessionBackend

// Bank is a correlation precompute service; see NewBank.
type Bank = bank.Bank

// BankOptions sizes and instruments a Bank: pool capacity, low-watermark
// refill trigger, generation parallelism, deterministic seeding, tracing
// and metrics hooks.
type BankOptions = bank.Options

// BankKey identifies one correlation pool: (model, scheme, ring width,
// batch, backend).
type BankKey = bank.Key

// BankStats is a snapshot of bank counters and pool depths.
type BankStats = bank.Stats

// NewBank returns an empty correlation bank. Register the served models
// with RegisterBankModel, hand the bank to both endpoints via
// Config.Bank, and optionally Prewarm the pools you expect traffic on;
// pools touched cold warm themselves in the background.
func NewBank(opts BankOptions) *Bank { return bank.New(opts) }

// RegisterBankModel makes a model's correlation pools available and
// returns the model ID that clients set as Config.BankModel. The ID is a
// digest of the (public) quantized model description, so any party can
// derive it independently; the server derives its own from the model it
// serves.
func RegisterBankModel(b *Bank, q *QuantizedModel) (string, error) {
	return b.RegisterModel(q.qm)
}

// BankModelID computes the bank identity of a model without registering
// it anywhere.
func BankModelID(q *QuantizedModel) (string, error) {
	return bank.ModelID(q.qm)
}

// BankStore is the bank's durable on-disk pool store: append-only
// CRC-checksummed segment files per pool plus a claim journal with
// claim-before-use tombstoning, so single-use survives SIGKILL. Open
// one, Recover it, and pass it as BankOptions.Store; see DESIGN.md
// "Durable bank".
type BankStore = bank.Store

// BankStoreOptions configures OpenBankStore: directory, journal fsync
// cadence, segment rotation size, observer.
type BankStoreOptions = bank.StoreOptions

// BankRecoverStats summarizes a store's startup recovery scan.
type BankRecoverStats = bank.RecoverStats

// BankPeerID is a party's durable 128-bit identity, minted at first
// store open. Peer-paired correlations are keyed by the peer's ID.
type BankPeerID = bank.PeerID

// OpenBankStore creates or attaches to a durable pool store. Call
// Recover on it (directly, or via serve.Runtime.StartRecovery) before
// serving from it.
func OpenBankStore(opts BankStoreOptions) (*BankStore, error) { return bank.OpenStore(opts) }

// ParseBankPeerID parses the 32-hex-digit form of a peer ID, e.g. the
// one the serve handshake carries.
func ParseBankPeerID(s string) (BankPeerID, error) { return bank.ParsePeerID(s) }

// BankReplenisher keeps peer-paired pools above their low watermark by
// running remote offline sessions in the background, with jittered
// exponential backoff on transient failures; see NewBankReplenisher.
type BankReplenisher = bank.Replenisher

// BankReplenishOptions configures a BankReplenisher. Its Run callback
// typically dials the server's offline endpoint (serve.DialOffline) and
// drives ReplenishSession.
type BankReplenishOptions = bank.ReplenishOptions

// NewBankReplenisher validates options and returns a stopped
// replenisher; Start it and Close it on shutdown.
func NewBankReplenisher(opts BankReplenishOptions) (*BankReplenisher, error) {
	return bank.NewReplenisher(opts)
}

// OfflineMode selects how a session provisions its offline phase; see
// Config.OfflineMode.
type OfflineMode int

const (
	// OfflineAuto draws from Config.Bank when a correlation is available
	// and falls back to inline offline generation when the pool is dry or
	// no bank is configured. The default.
	OfflineAuto OfflineMode = iota
	// OfflineInline always runs the offline phase inline, ignoring any
	// configured bank.
	OfflineInline
	// OfflineBanked requires the bank: a dry pool (client) or an inline
	// announcement (server) fails the batch immediately instead of
	// falling back. Use it to keep latency-critical serving off the
	// offline path, and in tests that must not silently degrade.
	OfflineBanked
)

func (m OfflineMode) String() string {
	switch m {
	case OfflineAuto:
		return "auto"
	case OfflineInline:
		return "inline"
	case OfflineBanked:
		return "banked"
	}
	return "invalid"
}
