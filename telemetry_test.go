package abnn2

import (
	"bytes"
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"abnn2/internal/transport"
)

// sumRoots adds up the communication attributed to root spans; roots
// partition a session's traffic, so the sum must equal the endpoint's
// meter totals exactly.
func sumRoots(spans []TraceSpan) Stats {
	var s Stats
	for _, sp := range TraceRoots(spans) {
		s.BytesAB += sp.BytesSent
		s.BytesBA += sp.BytesRecvd
		s.Messages += sp.Messages
		s.Flights += sp.Flights
	}
	return s
}

func countSpans(spans []TraceSpan, name string) int {
	n := 0
	for _, sp := range spans {
		if sp.Name == name {
			n++
		}
	}
	return n
}

// TestTracedTCPInferenceSpansMatchMeter is the observability acceptance
// test: a full secure inference over real TCP, traced on both sides,
// must produce span dumps whose root spans sum exactly to each
// endpoint's transport meter — no byte unattributed, none counted
// twice — with the per-layer phase structure of the protocol visible.
func TestTracedTCPInferenceSpansMatchMeter(t *testing.T) {
	qm, test := trainSmall(t, "8(2,2,2,2)")
	layers := len(qm.Arch().Layers)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	defer ln.Close()

	srvSink := NewTraceCollector()
	cliSink := NewTraceCollector()
	type serveResult struct {
		stats Stats
		err   error
	}
	resCh := make(chan serveResult, 1)
	go func() {
		tcp, err := ln.Accept()
		if err != nil {
			resCh <- serveResult{err: err}
			return
		}
		defer tcp.Close()
		stats, err := Serve(Stream(tcp), qm, Config{
			RingBits: 64, RoundTimeout: time.Minute, Trace: srvSink, SessionID: 7,
		})
		resCh <- serveResult{stats, err}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	conn, err := DialTCP(ctx, ln.Addr().String())
	if err != nil {
		t.Fatalf("dial tcp: %v", err)
	}
	client, err := Dial(conn, qm.Arch(), Config{
		RingBits: 64, RoundTimeout: time.Minute, Trace: cliSink, SessionID: 7,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	inputs := test.Inputs[:2]
	got, err := client.Classify(inputs)
	if err != nil {
		t.Fatalf("classify: %v", err)
	}
	for k, x := range inputs {
		if want := qm.Predict(x); got[k] != want {
			t.Errorf("input %d: secure class %d, plaintext %d", k, got[k], want)
		}
	}
	cliStats := client.Stats()
	client.Close()
	res := <-resCh
	if res.err != nil {
		t.Fatalf("serve: %v", res.err)
	}

	// Root spans partition each endpoint's traffic.
	if got := sumRoots(srvSink.Spans()); got != res.stats {
		t.Errorf("server root spans sum to %+v, meter says %+v", got, res.stats)
	}
	if got := sumRoots(cliSink.Spans()); got != cliStats {
		t.Errorf("client root spans sum to %+v, meter says %+v", got, cliStats)
	}
	// The two single-ended meters are mirror images over lossless TCP.
	if res.stats.BytesAB != cliStats.BytesBA || res.stats.BytesBA != cliStats.BytesAB {
		t.Errorf("endpoint views disagree: server %+v, client %+v", res.stats, cliStats)
	}
	if res.stats.TotalBytes() == 0 {
		t.Error("no traffic metered")
	}

	// Phase structure: one triplets and one matmul span per linear
	// layer, one ReLU span per activation layer, exactly one batch.
	srvSpans := srvSink.Spans()
	reluLayers := 0
	for _, l := range qm.Arch().Layers {
		if l.ReLU {
			reluLayers++
		}
	}
	for name, want := range map[string]int{
		"setup": 1, "batch": 1, "offline": 1, "online": 1,
		"triplets": layers, "matmul": layers, "relu": reluLayers,
		"input": 1, "output": 1,
	} {
		if got := countSpans(srvSpans, name); got != want {
			t.Errorf("server %q spans = %d, want %d", name, got, want)
		}
	}
	cliSpans := cliSink.Spans()
	for name, want := range map[string]int{
		"setup": 1, "batch": 1, "offline": 1, "online": 1,
		"triplets": layers, "relu": reluLayers, "input": 1, "output": 1,
	} {
		if got := countSpans(cliSpans, name); got != want {
			t.Errorf("client %q spans = %d, want %d", name, got, want)
		}
	}
	for _, sp := range append(srvSpans, cliSpans...) {
		if sp.Session != 7 {
			t.Fatalf("span %q has session %d, want 7", sp.Name, sp.Session)
		}
		if sp.Party != "server" && sp.Party != "client" {
			t.Fatalf("span %q has party %q", sp.Name, sp.Party)
		}
		if sp.Dur < 0 {
			t.Fatalf("span %q has negative duration", sp.Name)
		}
	}
	for _, sp := range srvSpans {
		switch sp.Name {
		case "triplets", "matmul":
			if sp.Layer < 0 || sp.Layer >= layers {
				t.Errorf("%s span layer = %d", sp.Name, sp.Layer)
			}
		case "batch", "offline", "online":
			if sp.Batch != len(inputs) {
				t.Errorf("%s span batch = %d, want %d", sp.Name, sp.Batch, len(inputs))
			}
		}
		if sp.Name == "matmul" && sp.Workers <= 0 {
			t.Errorf("matmul span workers = %d", sp.Workers)
		}
	}

	// The JSONL dump format round-trips, and the table renderer shows
	// the per-phase breakdown.
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	for _, sp := range srvSpans {
		w.Emit(sp)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	if len(back) != len(srvSpans) {
		t.Fatalf("round trip lost spans: %d vs %d", len(back), len(srvSpans))
	}
	table := TraceTable(back)
	for _, phase := range []string{"matmul", "triplets", "setup"} {
		if !strings.Contains(table, phase) {
			t.Errorf("trace table missing %q:\n%s", phase, table)
		}
	}
}

// TestStatsWithoutTracing: metering is always on, so Stats must be
// populated and mirrored even with tracing disabled.
func TestStatsWithoutTracing(t *testing.T) {
	qm, test := trainSmall(t, "ternary")
	sc, cc := Pipe()
	defer sc.Close()
	type serveResult struct {
		stats Stats
		err   error
	}
	resCh := make(chan serveResult, 1)
	go func() {
		stats, err := Serve(sc, qm, Config{RingBits: 32, Seed: 1})
		resCh <- serveResult{stats, err}
	}()
	client, err := Dial(cc, qm.Arch(), Config{RingBits: 32, Seed: 2})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := client.Classify(test.Inputs[:1]); err != nil {
		t.Fatalf("classify: %v", err)
	}
	cliStats := client.Stats()
	client.Close()
	res := <-resCh
	if res.err != nil {
		t.Fatalf("serve: %v", res.err)
	}
	if res.stats.BytesAB != cliStats.BytesBA || res.stats.BytesBA != cliStats.BytesAB {
		t.Errorf("endpoint views disagree: server %+v, client %+v", res.stats, cliStats)
	}
	if res.stats.TotalBytes() == 0 || res.stats.Messages == 0 {
		t.Errorf("stats empty without tracing: %+v", res.stats)
	}
}

// TestSessionSendAddsNoAllocations is the zero-overhead acceptance
// criterion: with tracing off, the session layer (always-on metering
// included) must not allocate on the hot send path beyond what the raw
// transport itself allocates.
func TestSessionSendAddsNoAllocations(t *testing.T) {
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	sc := newSessionConn(context.Background(), a, 0, nil)
	defer sc.release()
	msg := make([]byte, 64)

	base := testing.AllocsPerRun(200, func() {
		if err := b.Send(msg); err != nil {
			t.Fatal(err)
		}
	})
	metered := testing.AllocsPerRun(200, func() {
		if err := sc.Send(msg); err != nil {
			t.Fatal(err)
		}
	})
	if metered > base {
		t.Fatalf("session send allocates %.1f/op, raw transport %.1f/op", metered, base)
	}
}

// BenchmarkSessionSend measures the per-message overhead of the session
// layer with tracing disabled (metering always on).
func BenchmarkSessionSend(b *testing.B) {
	x, y := transport.Pipe()
	defer x.Close()
	sc := newSessionConn(context.Background(), x, 0, nil)
	defer sc.release()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if _, err := y.Recv(); err != nil {
				return
			}
		}
	}()
	msg := make([]byte, 1024)
	b.ReportAllocs()
	b.SetBytes(int64(len(msg)))
	for i := 0; i < b.N; i++ {
		if err := sc.Send(msg); err != nil {
			b.Fatal(err)
		}
	}
	x.Close()
	wg.Wait()
}
