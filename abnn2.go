// Package abnn2 is a Go implementation of ABNN2 (Shen et al., DAC 2022):
// secure two-party prediction over arbitrary-bitwidth quantized neural
// networks. A server holding a quantized model and a client holding an
// input jointly compute the model's prediction; the server learns nothing
// about the input, the client nothing about the weights beyond the
// (public) architecture.
//
// The package is a facade over the building blocks in internal/: train or
// load a float model, quantize it under a fragmentation scheme such as
// "8(2,2,2,2)", "ternary" or "binary", and run secure inference over any
// connection:
//
//	model := abnn2.NewMLP(784, 128, 128, 10)
//	model.Train(images, labels, abnn2.TrainOptions{Epochs: 5})
//	qm, _ := model.Quantize("8(2,2,2,2)", 8)
//
//	serverConn, clientConn := abnn2.Pipe()
//	go abnn2.Serve(serverConn, qm, abnn2.Config{})          // model owner
//	client, _ := abnn2.Dial(clientConn, qm.Arch(), abnn2.Config{})
//	classes, _ := client.Classify(images[:1])               // data owner
//
// The offline/online split, the 1-out-of-N OT matrix multiplication, the
// multi-batch and one-batch optimisations, and both ReLU protocols follow
// the paper; see DESIGN.md for the experiment map.
package abnn2

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"abnn2/internal/bank"
	"abnn2/internal/core"
	"abnn2/internal/plan"
	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
	"abnn2/internal/trace"
	"abnn2/internal/transport"
)

// Conn is a two-party message channel. Obtain one from Pipe (in-process)
// or Stream (TCP or any byte stream).
type Conn = transport.Conn

// Pipe returns an in-process connection pair (server end, client end).
func Pipe() (Conn, Conn) { return transport.Pipe() }

// MeteredPipe returns an in-process pair plus a traffic meter, useful for
// measuring protocol cost.
func MeteredPipe() (Conn, Conn, *transport.Meter) { return transport.MeteredPipe() }

// Stream frames messages over a byte stream such as a *net.TCPConn.
func Stream(rw io.ReadWriteCloser) Conn { return transport.NewStream(rw) }

// StreamLimit is Stream with an explicit per-message frame limit,
// enforced symmetrically on send and receive (before allocation). Use it
// to raise the default 64 MiB bound for very large batches, or to lower
// it for memory-constrained deployments. Both parties must configure the
// same limit.
func StreamLimit(rw io.ReadWriteCloser, limit int) Conn {
	return transport.NewStreamLimit(rw, limit)
}

// Config selects protocol parameters. The zero value means: 32-bit ring,
// fully oblivious GC ReLU.
type Config struct {
	// RingBits is l of the share ring Z_2^l (8..64). Default 32.
	RingBits uint
	// OptimizedReLU selects the paper's section 4.2 sign-bit ReLU, which
	// is ~3x cheaper in garbled tables but reveals each activation's sign
	// to both parties. Off by default.
	OptimizedReLU bool
	// Seed, when non-zero, makes this endpoint's randomness deterministic
	// — for the client and the server role alike. With both parties
	// seeded the entire wire transcript is byte-reproducible, which the
	// conformance harness uses for golden-transcript regression tests
	// (testing/benchmarks only — never set in production).
	Seed uint64
	// Workers bounds the compute parallelism of the protocol kernels (OT
	// extension, garbling, triplet accumulation, matmul) on this party.
	// 0 means one worker per CPU. Purely local: the two parties may use
	// different values, and every value — combined with the same Seed —
	// yields byte-identical transcripts.
	Workers int
	// RoundTimeout bounds every blocking protocol round (one framed send
	// or receive): a peer that stalls longer fails the session with a
	// timeout error instead of wedging it forever. It does not bound a
	// server's idle wait between batches. 0 means no per-round deadline.
	// Purely local; the parties may configure different values.
	RoundTimeout time.Duration
	// Trace, when non-nil, receives one TraceSpan per protocol phase
	// (setup, offline, per-layer matmul/ReLU/pool, ...) as it completes,
	// with duration and communication deltas attached. Purely local
	// telemetry: the peer never observes it, and nil adds zero overhead
	// to the protocol hot path. See NewTraceCollector and NewTraceWriter
	// for ready-made sinks.
	Trace TraceSink
	// SessionID tags every span this endpoint emits, correlating traces
	// with logs and metrics when one process runs many sessions. Purely
	// local; 0 is a valid ID.
	SessionID uint64
	// Bank, when non-nil, provisions batches from precomputed correlation
	// pools instead of running the offline phase on the request path. Both
	// endpoints of a session must share the same *Bank instance (it is an
	// in-process trusted dealer; see NewBank): the client Acquires its
	// half and announces the correlation ID, the server Claims the paired
	// half. Behaviour on a dry pool is set by OfflineMode.
	Bank *Bank
	// OfflineMode selects inline vs banked offline provisioning; the zero
	// value OfflineAuto prefers the bank and falls back inline. Ignored
	// when Bank is nil (everything runs inline) except that OfflineBanked
	// then fails validation on the client.
	OfflineMode OfflineMode
	// BankModel is the model ID (from RegisterBankModel / BankModelID)
	// the client keys its pool draws with. Client-side only: the server
	// derives the ID from the model it serves. Required when Bank is set
	// on a client and OfflineMode is not OfflineInline.
	BankModel string
	// BankPeer, on a client, is the serving peer's durable identity (the
	// hex ID from the serve handshake). When set — which requires a Bank
	// carrying a durable store — provisioning prefers the peer-paired
	// pool filled by remote offline sessions with that server
	// (ReplenishSession) over the in-process dealer pools, announcing
	// correlations with this party's own peer ID so the server can claim
	// the matching stored half. Empty disables peer-paired draws.
	// Peer-paired pools hold all-ABNN2 material only, so a session with
	// a Plan skips them and draws from the dealer pools (or falls back
	// inline).
	BankPeer string
	// Plan, when non-nil, fixes the per-layer offline backend schedule.
	// On a client it is proposed to the server in every batch
	// announcement (one extra public flight) and executed by both
	// parties; banked draws are keyed by the plan's fingerprint so
	// pooled correlations always match the schedule. On a server it is a
	// requirement: announced plans must be byte-identical to it and
	// plan-less batches are rejected. A server without a Plan accepts
	// any announced plan the model can execute. Plans never change
	// prediction bits — only where offline cost is spent.
	Plan *Plan
	// MiniONNKeyBits sets the Paillier key size of planned MiniONN
	// layers (0 = the baseline default, 1024). Public protocol state:
	// both parties must configure the same value.
	MiniONNKeyBits int
}

func (c Config) ringBits() uint {
	if c.RingBits == 0 {
		return 32
	}
	return c.RingBits
}

// validate rejects configurations the lower layers would panic on.
func (c Config) validate() error {
	if b := c.ringBits(); b < 8 || b > 64 {
		return fmt.Errorf("abnn2: RingBits %d out of range [8,64]", b)
	}
	if c.Workers < 0 {
		return fmt.Errorf("abnn2: negative Workers %d", c.Workers)
	}
	if c.RoundTimeout < 0 {
		return fmt.Errorf("abnn2: negative RoundTimeout %v", c.RoundTimeout)
	}
	if c.OfflineMode < OfflineAuto || c.OfflineMode > OfflineBanked {
		return fmt.Errorf("abnn2: invalid OfflineMode %d", int(c.OfflineMode))
	}
	if c.OfflineMode == OfflineBanked && c.Bank == nil {
		return fmt.Errorf("abnn2: OfflineBanked requires Config.Bank")
	}
	if c.MiniONNKeyBits != 0 && (c.MiniONNKeyBits < 256 || c.MiniONNKeyBits > 4096) {
		return fmt.Errorf("abnn2: MiniONNKeyBits %d outside [256,4096]", c.MiniONNKeyBits)
	}
	if c.Plan != nil && (len(c.Plan.Layers) == 0 || len(c.Plan.Layers) > plan.MaxLayers) {
		return fmt.Errorf("abnn2: Plan has %d layers, want [1,%d]", len(c.Plan.Layers), plan.MaxLayers)
	}
	return nil
}

func (c Config) variant() core.ReLUVariant {
	if c.OptimizedReLU {
		return core.ReLUOptimized
	}
	return core.ReLUGC
}

func (c Config) rng() *prg.PRG {
	if c.Seed != 0 {
		return prg.New(prg.SeedFromInt(c.Seed))
	}
	return prg.New(prg.NewSeed())
}

// Arch is the public network architecture shared by both parties.
type Arch = core.Arch

// Serve runs the server side of secure inference until conn closes:
// setup, then one offline+online round per client batch request. It
// returns the session's traffic totals and a nil error when the client
// closes the connection cleanly.
func Serve(conn Conn, model *QuantizedModel, cfg Config) (Stats, error) {
	return ServeContext(context.Background(), conn, model, cfg)
}

// ServeContext is Serve with lifecycle control: cancelling ctx aborts the
// session even mid-round (a blocked send or receive is interrupted) and
// ServeContext returns an error wrapping ctx's error. Combined with
// Config.RoundTimeout this makes a session safe to run against an
// untrusted client: it can fail, but it cannot hang, leak its goroutine,
// or take the process down (peer-provoked panics surface as *PanicError).
//
// The returned Stats cover everything this endpoint sent and received
// over the session's lifetime, including the failed remainder of an
// aborted session.
func ServeContext(ctx context.Context, conn Conn, model *QuantizedModel, cfg Config) (Stats, error) {
	srv, err := newServer(ctx, conn, model, cfg)
	if err != nil {
		return Stats{}, err
	}
	defer srv.sc.release()
	for {
		err := srv.HandleBatch()
		if errors.Is(err, io.EOF) {
			return srv.Stats(), nil // client hung up cleanly between batches
		}
		if err != nil {
			return srv.Stats(), err
		}
	}
}

// Server is the model owner's endpoint.
type Server struct {
	eng  *core.ServerEngine
	sc   *sessionConn
	tr   *trace.Tracer
	bank *Bank
	mode OfflineMode
	key  BankKey // pool key template; Batch filled per announcement

	reqPlan []byte // marshalled Config.Plan, nil = accept any valid plan
	planFP  string // fingerprint of the batch's active plan ("" = none)
	planned bool   // a schedule is currently installed on the engine
}

// NewServer performs the cryptographic setup (base OTs) for the server
// role.
func NewServer(conn Conn, model *QuantizedModel, cfg Config) (*Server, error) {
	return newServer(context.Background(), conn, model, cfg)
}

func newServer(ctx context.Context, conn Conn, model *QuantizedModel, cfg Config) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sc := newSessionConn(ctx, conn, cfg.RoundTimeout, cfg.flightFunc("server"))
	tr := cfg.tracer(sc, "server")
	scheme := model.qm.Layers[0].Scheme
	p := core.Params{Ring: ring.New(cfg.ringBits()), Scheme: scheme, Workers: cfg.Workers, Trace: tr,
		MiniONNBits: cfg.MiniONNKeyBits}
	sp := tr.Start("setup")
	eng, err := guardVal("server setup", func() (*core.ServerEngine, error) {
		return core.NewServerEngineSeeded(sc, model.qm, p, cfg.variant(), cfg.rng())
	})
	sp.End(err)
	if err != nil {
		sc.release()
		return nil, err
	}
	srv := &Server{eng: eng, sc: sc, tr: tr, bank: cfg.Bank, mode: cfg.OfflineMode}
	if cfg.Plan != nil {
		// Pre-check the required plan against this model so a
		// misconfigured server fails at setup, not per batch.
		if err := cfg.Plan.Validate(eng.Arch(), 1); err != nil {
			sc.release()
			return nil, err
		}
		srv.reqPlan = cfg.Plan.Marshal()
	}
	if cfg.Bank != nil {
		// The server keys its claims by its own model's identity; a client
		// announcing IDs from another model's pool is a claim miss.
		id, err := bank.ModelID(model.qm)
		if err != nil {
			sc.release()
			return nil, err
		}
		srv.key = BankKey{Model: id, Scheme: scheme.Name(), RingBits: cfg.ringBits(), Backend: bank.SessionBackend}
	}
	return srv, nil
}

// tracer builds this endpoint's span recorder; nil when tracing is off,
// which disables every Start call with zero overhead.
func (c Config) tracer(sc *sessionConn, party string) *trace.Tracer {
	if c.Trace == nil {
		return nil
	}
	return trace.New(c.Trace,
		trace.WithParty(party),
		trace.WithSession(c.SessionID),
		trace.WithCounters(sc.counters))
}

// flightFunc builds this endpoint's wire-flight stamper, nil unless the
// configured trace sink also consumes flight events. Stamps are derived
// from monotonic readings against the session epoch, so a wall-clock
// step mid-session cannot reorder them; timeline reconciliation only
// needs stamps to be internally consistent per endpoint.
func (c Config) flightFunc(party string) transport.FlightFunc {
	fs, ok := c.Trace.(trace.FlightSink)
	if !ok {
		return nil
	}
	epoch := time.Now()
	session := c.SessionID
	return func(dir string, seq int64, n int, at time.Time) {
		mono := at.Sub(epoch) // monotonic difference, immune to clock steps
		fs.EmitFlight(trace.Flight{
			Party:   party,
			Session: session,
			Dir:     dir,
			Seq:     seq,
			Bytes:   int64(n),
			Wall:    epoch.Add(mono),
		})
	}
}

// Close releases the server endpoint: it stops the session's
// cancellation watcher and closes the connection. Safe to call more than
// once.
func (s *Server) Close() error { return s.sc.Close() }

// Stats returns the traffic totals of this endpoint so far: BytesAB is
// what the server sent, BytesBA what it received. Metering is always on;
// it does not require tracing.
func (s *Server) Stats() Stats { return s.sc.Stats() }

// HandleBatch serves one prediction batch: it receives the client's batch
// announcement (size + output mode), runs the offline phase, then the
// online phase. The announcement wait is idle time (no round deadline);
// everything after it is deadline-bounded when RoundTimeout is set.
//
// A client that hangs up between batches is a clean shutdown, reported
// as io.EOF; a connection lost mid-batch is a protocol failure and
// surfaces as a non-EOF error.
func (s *Server) HandleBatch() error {
	// The idle span covers the between-batches wait (including the batch
	// announcement bytes), so root spans partition the session's traffic:
	// every byte falls in exactly one of setup, idle, or batch.
	isp := s.tr.Start("idle")
	raw, err := s.sc.recvIdle()
	if err != nil {
		if errors.Is(err, transport.ErrClosed) || errors.Is(err, io.EOF) {
			isp.End(nil)
			return io.EOF
		}
		isp.End(err)
		return err
	}
	isp.End(nil)
	bsp := s.tr.Start("batch")
	err = guard("handle batch", func() error {
		// 5 bytes announce an inline batch; 13 bytes append a correlation
		// ID and ask for dealer-banked provisioning; 29 bytes further
		// append the client's peer ID and ask for a peer-paired half (see
		// Client.provision).
		if len(raw) != 5 && len(raw) != 13 && len(raw) != 29 {
			return fmt.Errorf("abnn2: malformed batch announcement")
		}
		batch := int(uint32(raw[0]) | uint32(raw[1])<<8 | uint32(raw[2])<<16 | uint32(raw[3])<<24)
		if batch <= 0 || batch > 1<<20 {
			return fmt.Errorf("abnn2: batch size %d out of range", batch)
		}
		// The mode byte is a bit mask: bit 0 selects the argmax finish,
		// bit 1 announces that a plan frame follows the announcement.
		if raw[4] > announceArgmax|announcePlan {
			return fmt.Errorf("abnn2: unknown output mode %d", raw[4])
		}
		argmax := raw[4]&announceArgmax != 0
		bsp.SetBatch(batch)
		if err := s.applyPlan(batch, raw[4]&announcePlan != 0); err != nil {
			return err
		}
		if len(raw) == 29 {
			var peer bank.PeerID
			copy(peer[:], raw[13:29])
			if err := s.claimPeerCorr(batch, binary.LittleEndian.Uint64(raw[5:13]), peer); err != nil {
				return err
			}
		} else if len(raw) == 13 {
			if err := s.claimCorr(batch, binary.LittleEndian.Uint64(raw[5:13])); err != nil {
				return err
			}
		} else {
			if s.mode == OfflineBanked {
				return fmt.Errorf("abnn2: inline batch announcement refused (server is OfflineBanked)")
			}
			if err := s.eng.Offline(batch); err != nil {
				return err
			}
		}
		if argmax {
			return s.eng.OnlineArgmax()
		}
		return s.eng.Online()
	})
	bsp.End(err)
	return err
}

// Batch announcement mode-byte bits.
const (
	announceArgmax = 0x01 // private argmax finish
	announcePlan   = 0x02 // a plan frame follows the announcement
)

// applyPlan consumes a batch's plan frame (when announced) and installs
// the schedule on the engine; without one it restores the all-ABNN2
// default. The frame is attacker-shaped bytes: it is strictly parsed,
// checked against the server's configured plan (when one is required),
// and validated against the model — layer count, backend applicability,
// weight ranges — before any of it reaches the protocol.
func (s *Server) applyPlan(batch int, planned bool) error {
	if !planned {
		if s.reqPlan != nil {
			return fmt.Errorf("abnn2: batch announced without a plan, but this server requires one")
		}
		if s.planned {
			if err := s.eng.SetSchedule(nil); err != nil {
				return err
			}
			s.planned, s.planFP = false, ""
		}
		return nil
	}
	raw, err := s.sc.Recv()
	if err != nil {
		return fmt.Errorf("abnn2: recv plan frame: %w", err)
	}
	p, err := plan.Unmarshal(raw)
	if err != nil {
		return fmt.Errorf("abnn2: %w", err)
	}
	if s.reqPlan != nil && !bytes.Equal(raw, s.reqPlan) {
		return fmt.Errorf("abnn2: announced plan does not match this server's configured plan")
	}
	if err := p.Validate(s.eng.Arch(), batch); err != nil {
		return fmt.Errorf("abnn2: %w", err)
	}
	sched, err := p.Schedule()
	if err != nil {
		return fmt.Errorf("abnn2: %w", err)
	}
	if err := s.eng.SetSchedule(sched); err != nil {
		return err
	}
	s.planned, s.planFP = true, p.Fingerprint()
	return nil
}

// claimCorr resolves a banked announcement: it claims the parked server
// half for the announced correlation ID and installs it. Any failure —
// no bank, inline-only policy, unknown/spent ID, a half from the wrong
// pool — is a protocol error that fails the batch immediately; the
// session never blocks waiting for material.
func (s *Server) claimCorr(batch int, id uint64) (err error) {
	ksp := s.tr.Start("bank").SetBatch(batch)
	defer func() { ksp.End(err) }()
	if s.bank == nil || s.mode == OfflineInline {
		return fmt.Errorf("abnn2: client announced a banked batch but this server provisions inline")
	}
	key := s.claimKey(batch)
	half, ok := s.bank.Claim(id, key)
	if !ok {
		return fmt.Errorf("abnn2: unknown or spent correlation ID for pool %v", key)
	}
	corr, good := half.(*core.ServerCorr)
	if !good {
		return fmt.Errorf("abnn2: pool %v holds %T, want a server correlation", key, half)
	}
	return s.eng.InstallCorr(corr)
}

// claimPeerCorr resolves a peer-banked announcement: it durably claims
// the server half stored under the announcing client's peer ID (the
// claim-journal entry lands before the half is installed, so the ID can
// never back two batches even across a crash) and installs it. Any
// failure fails the batch immediately, exactly like claimCorr.
func (s *Server) claimPeerCorr(batch int, id uint64, peer bank.PeerID) (err error) {
	ksp := s.tr.Start("bank-peer").SetBatch(batch)
	defer func() { ksp.End(err) }()
	if s.bank == nil || s.mode == OfflineInline {
		return fmt.Errorf("abnn2: client announced a peer-banked batch but this server provisions inline")
	}
	if s.bank.Store() == nil {
		return fmt.Errorf("abnn2: client announced a peer-banked batch but this server has no durable store")
	}
	if s.planFP != "" {
		// Peer-paired pools hold all-ABNN2 material; a planned batch
		// announcing one is a protocol violation, not a fallback case.
		return fmt.Errorf("abnn2: peer-banked announcement on a planned batch")
	}
	key := s.key
	key.Batch = batch
	corr, ok := s.bank.ClaimPeer(peer, id, key)
	if !ok {
		return fmt.Errorf("abnn2: unknown or spent peer correlation ID for pool %v", key)
	}
	return s.eng.InstallCorr(corr)
}

// claimKey is the pool key of the current batch: the session pool, or
// the plan-fingerprinted pool when a schedule is active — banked
// correlations must have been generated under the very schedule the
// batch runs.
func (s *Server) claimKey(batch int) BankKey {
	key := s.key
	key.Batch = batch
	if s.planFP != "" {
		key.Backend = bank.PlanBackend(s.planFP)
	}
	return key
}

// Client is the data owner's endpoint.
type Client struct {
	eng  *core.ClientEngine
	sc   *sessionConn
	tr   *trace.Tracer
	arch Arch
	rg   ring.Ring
	frac uint
	bank *Bank
	mode OfflineMode
	key  BankKey // pool key template; Batch filled per request

	hasPeer  bool
	peer     bank.PeerID // the server's identity, keying local peer draws
	selfPeer bank.PeerID // this party's identity, announced to the server

	plan    *Plan  // the proposed per-layer backend schedule, nil = all-ABNN2
	planRaw []byte // its marshalled frame, appended to every announcement
}

// Dial performs the cryptographic setup for the client role. arch must
// match the server's model (it is public information, including the
// quantization scheme name).
func Dial(conn Conn, arch Arch, cfg Config) (*Client, error) {
	return DialContext(context.Background(), conn, arch, cfg)
}

// DialContext is Dial with lifecycle control: ctx governs the whole
// client session, not just setup. Cancelling it aborts any in-flight
// protocol round; subsequent calls fail immediately. Callers should
// Close the client when done so the cancellation watcher is released.
func DialContext(ctx context.Context, conn Conn, arch Arch, cfg Config) (*Client, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Bank != nil && cfg.OfflineMode != OfflineInline && cfg.BankModel == "" {
		return nil, fmt.Errorf("abnn2: Config.Bank on a client requires Config.BankModel")
	}
	var peer BankPeerID
	usePeer := cfg.BankPeer != "" && cfg.OfflineMode != OfflineInline && cfg.Plan == nil
	if usePeer {
		if cfg.Bank == nil || cfg.Bank.Store() == nil {
			return nil, fmt.Errorf("abnn2: Config.BankPeer requires a bank with a durable store")
		}
		var perr error
		if peer, perr = bank.ParsePeerID(cfg.BankPeer); perr != nil {
			return nil, perr
		}
	}
	scheme, err := quant.Parse(arch.SchemeName)
	if err != nil {
		return nil, fmt.Errorf("abnn2: architecture scheme: %w", err)
	}
	sc := newSessionConn(ctx, conn, cfg.RoundTimeout, cfg.flightFunc("client"))
	tr := cfg.tracer(sc, "client")
	rg := ring.New(cfg.ringBits())
	p := core.Params{Ring: rg, Scheme: scheme, Workers: cfg.Workers, Trace: tr,
		MiniONNBits: cfg.MiniONNKeyBits}
	sp := tr.Start("setup")
	eng, err := guardVal("client setup", func() (*core.ClientEngine, error) {
		return core.NewClientEngine(sc, arch, p, cfg.variant(), cfg.rng())
	})
	sp.End(err)
	if err != nil {
		sc.release()
		return nil, err
	}
	cl := &Client{eng: eng, sc: sc, tr: tr, arch: arch, rg: rg, frac: arch.Frac,
		bank: cfg.Bank, mode: cfg.OfflineMode}
	var sched core.Schedule
	if cfg.Plan != nil {
		if err := cfg.Plan.Validate(arch, 1); err != nil {
			sc.release()
			return nil, fmt.Errorf("abnn2: %w", err)
		}
		if sched, err = cfg.Plan.Schedule(); err != nil {
			sc.release()
			return nil, fmt.Errorf("abnn2: %w", err)
		}
		if err := eng.SetSchedule(sched); err != nil {
			sc.release()
			return nil, err
		}
		cl.plan, cl.planRaw = cfg.Plan, cfg.Plan.Marshal()
	}
	if cfg.Bank != nil {
		backend := bank.SessionBackend
		if cfg.Plan != nil {
			// Banked draws for a planned session come from pools keyed —
			// and generated — under this exact schedule.
			fp := cfg.Plan.Fingerprint()
			backend = bank.PlanBackend(fp)
			if err := cfg.Bank.RegisterSchedule(fp, sched, cfg.MiniONNKeyBits); err != nil {
				sc.release()
				return nil, err
			}
		}
		cl.key = BankKey{Model: cfg.BankModel, Scheme: arch.SchemeName,
			RingBits: cfg.ringBits(), Backend: backend}
	}
	if usePeer {
		cl.hasPeer, cl.peer, cl.selfPeer = true, peer, cfg.Bank.Store().PeerID()
	}
	return cl, nil
}

// Close releases the client endpoint: it stops the session's
// cancellation watcher and closes the connection. Safe to call more than
// once.
func (c *Client) Close() error { return c.sc.Close() }

// Stats returns the traffic totals of this endpoint so far: BytesAB is
// what the client sent, BytesBA what it received. Metering is always on;
// it does not require tracing.
func (c *Client) Stats() Stats { return c.sc.Stats() }

// Classify securely evaluates the model on a batch of float inputs and
// returns the predicted class indices (computed locally from the full
// score vector; see ClassifyPrivate to reveal only the class).
func (c *Client) Classify(inputs [][]float64) ([]int, error) {
	out, err := c.Infer(inputs)
	if err != nil {
		return nil, err
	}
	classes := make([]int, len(inputs))
	for k := range inputs {
		best, bestV := 0, c.rg.Signed(out.At(0, k))
		for i := 1; i < out.Rows; i++ {
			if v := c.rg.Signed(out.At(i, k)); v > bestV {
				best, bestV = i, v
			}
		}
		classes[k] = best
	}
	return classes, nil
}

// ClassifyPrivate is Classify with a garbled-circuit argmax finish: the
// client learns only the winning class per input — not the scores — and
// the server still learns nothing. Costs one extra GC round.
func (c *Client) ClassifyPrivate(inputs [][]float64) ([]int, error) {
	bsp := c.tr.Start("batch").SetBatch(len(inputs))
	v, err := guardVal("private classification", func() ([]int, error) {
		X, err := c.encodeBatch(inputs)
		if err != nil {
			return nil, err
		}
		if err := c.provision(len(inputs), 1); err != nil {
			return nil, err
		}
		return c.eng.PredictArgmax(X)
	})
	bsp.End(err)
	return v, err
}

// Infer securely evaluates the model and returns the raw ring outputs
// (one column per input). Most callers want Classify.
func (c *Client) Infer(inputs [][]float64) (*ring.Mat, error) {
	bsp := c.tr.Start("batch").SetBatch(len(inputs))
	v, err := guardVal("inference", func() (*ring.Mat, error) {
		X, err := c.encodeBatch(inputs)
		if err != nil {
			return nil, err
		}
		if err := c.provision(len(inputs), 0); err != nil {
			return nil, err
		}
		return c.eng.Predict(X)
	})
	bsp.End(err)
	return v, err
}

func (c *Client) encodeBatch(inputs [][]float64) (*ring.Mat, error) {
	batch := len(inputs)
	if batch == 0 {
		return nil, fmt.Errorf("abnn2: empty batch")
	}
	in := c.arch.InputSize()
	X := ring.NewMat(in, batch)
	fp := ring.NewFixedPoint(c.rg, c.frac)
	for k, x := range inputs {
		if len(x) != in {
			return nil, fmt.Errorf("abnn2: input %d has %d features, want %d", k, len(x), in)
		}
		for i, v := range x {
			X.Set(i, k, fp.Encode(v))
		}
	}
	return X, nil
}

func (c *Client) announce(batch int, mode byte) error {
	ann := []byte{byte(batch), byte(batch >> 8), byte(batch >> 16), byte(batch >> 24), c.modeBits(mode)}
	if err := c.sc.Send(ann); err != nil {
		return err
	}
	return c.sendPlan()
}

// modeBits folds the plan-follows bit into an announcement's mode byte.
func (c *Client) modeBits(mode byte) byte {
	if c.planRaw != nil {
		mode |= announcePlan
	}
	return mode
}

// sendPlan appends the session's plan frame to an announcement. The
// frame depends only on public configuration, never on inputs, so its
// shape leaks nothing (the golden-transcript suite pins this).
func (c *Client) sendPlan() error {
	if c.planRaw == nil {
		return nil
	}
	return c.sc.Send(c.planRaw)
}

// provision readies one batch's offline material and announces the batch
// to the server. With a bank configured it tries to draw a correlation
// pair first: on a hit it installs the client half and announces the
// correlation ID (13-byte announcement) so the server claims the paired
// half; on a dry pool it falls back to the inline offline phase
// (OfflineAuto) or fails fast (OfflineBanked) — it never waits for the
// pool to fill.
func (c *Client) provision(batch int, mode byte) error {
	if c.plan != nil {
		// Batch size changes backend applicability (QUOTIENT is o=1
		// only), so the plan revalidates per batch before it is
		// announced — the server would reject it anyway.
		if err := c.plan.Validate(c.arch, batch); err != nil {
			return fmt.Errorf("abnn2: %w", err)
		}
	}
	if c.bank != nil && c.mode != OfflineInline {
		key := c.key
		key.Batch = batch
		// Peer-paired pool first: material this client generated with this
		// very server over the real wire, no dealer trust involved.
		if c.hasPeer {
			psp := c.tr.Start("bank-peer").SetBatch(batch)
			if id, corr, ok := c.bank.AcquirePeer(c.peer, key); ok {
				err := c.eng.InstallCorr(corr)
				psp.End(err)
				if err != nil {
					return err
				}
				return c.announcePeerBanked(batch, mode, id)
			}
			psp.End(nil)
		}
		bsp := c.tr.Start("bank").SetBatch(batch)
		id, half, ok := c.bank.Acquire(key)
		if ok {
			err := c.installCorr(key, id, half)
			bsp.End(err)
			if err != nil {
				return err
			}
			return c.announceBanked(batch, mode, id)
		}
		if c.mode == OfflineBanked {
			err := fmt.Errorf("%w: pool %v (OfflineBanked forbids inline fallback)", ErrBankDry, key)
			bsp.End(err)
			return err
		}
		bsp.End(nil)
	}
	if err := c.announce(batch, mode); err != nil {
		return err
	}
	return c.eng.Offline(batch)
}

// installCorr arms the engine with an acquired client half. On failure
// the parked server half is discarded too (claimed and dropped), so a
// broken pool entry cannot linger until eviction.
func (c *Client) installCorr(key BankKey, id uint64, half any) error {
	corr, good := half.(*core.ClientCorr)
	if !good {
		c.bank.Claim(id, key)
		return fmt.Errorf("abnn2: pool %v holds %T, want a client correlation", key, half)
	}
	if err := c.eng.InstallCorr(corr); err != nil {
		c.bank.Claim(id, key)
		return err
	}
	return nil
}

// announceBanked is announce plus the correlation ID the server claims
// its half with.
func (c *Client) announceBanked(batch int, mode byte, id uint64) error {
	ann := make([]byte, 13)
	ann[0], ann[1], ann[2], ann[3] = byte(batch), byte(batch>>8), byte(batch>>16), byte(batch>>24)
	ann[4] = c.modeBits(mode)
	binary.LittleEndian.PutUint64(ann[5:], id)
	if err := c.sc.Send(ann); err != nil {
		return err
	}
	return c.sendPlan()
}

// announcePeerBanked is announceBanked plus this client's own peer ID,
// under which the server stored its half of the announced correlation.
func (c *Client) announcePeerBanked(batch int, mode byte, id uint64) error {
	ann := make([]byte, 29)
	ann[0], ann[1], ann[2], ann[3] = byte(batch), byte(batch>>8), byte(batch>>16), byte(batch>>24)
	ann[4] = c.modeBits(mode)
	binary.LittleEndian.PutUint64(ann[5:13], id)
	copy(ann[13:29], c.selfPeer[:])
	if err := c.sc.Send(ann); err != nil {
		return err
	}
	return c.sendPlan()
}
