// Package abnn2 is a Go implementation of ABNN2 (Shen et al., DAC 2022):
// secure two-party prediction over arbitrary-bitwidth quantized neural
// networks. A server holding a quantized model and a client holding an
// input jointly compute the model's prediction; the server learns nothing
// about the input, the client nothing about the weights beyond the
// (public) architecture.
//
// The package is a facade over the building blocks in internal/: train or
// load a float model, quantize it under a fragmentation scheme such as
// "8(2,2,2,2)", "ternary" or "binary", and run secure inference over any
// connection:
//
//	model := abnn2.NewMLP(784, 128, 128, 10)
//	model.Train(images, labels, abnn2.TrainOptions{Epochs: 5})
//	qm, _ := model.Quantize("8(2,2,2,2)", 8)
//
//	serverConn, clientConn := abnn2.Pipe()
//	go abnn2.Serve(serverConn, qm, abnn2.Config{})          // model owner
//	client, _ := abnn2.Dial(clientConn, qm.Arch(), abnn2.Config{})
//	classes, _ := client.Classify(images[:1])               // data owner
//
// The offline/online split, the 1-out-of-N OT matrix multiplication, the
// multi-batch and one-batch optimisations, and both ReLU protocols follow
// the paper; see DESIGN.md for the experiment map.
package abnn2

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"abnn2/internal/core"
	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
	"abnn2/internal/trace"
	"abnn2/internal/transport"
)

// Conn is a two-party message channel. Obtain one from Pipe (in-process)
// or Stream (TCP or any byte stream).
type Conn = transport.Conn

// Pipe returns an in-process connection pair (server end, client end).
func Pipe() (Conn, Conn) { return transport.Pipe() }

// MeteredPipe returns an in-process pair plus a traffic meter, useful for
// measuring protocol cost.
func MeteredPipe() (Conn, Conn, *transport.Meter) { return transport.MeteredPipe() }

// Stream frames messages over a byte stream such as a *net.TCPConn.
func Stream(rw io.ReadWriteCloser) Conn { return transport.NewStream(rw) }

// StreamLimit is Stream with an explicit per-message frame limit,
// enforced symmetrically on send and receive (before allocation). Use it
// to raise the default 64 MiB bound for very large batches, or to lower
// it for memory-constrained deployments. Both parties must configure the
// same limit.
func StreamLimit(rw io.ReadWriteCloser, limit int) Conn {
	return transport.NewStreamLimit(rw, limit)
}

// Config selects protocol parameters. The zero value means: 32-bit ring,
// fully oblivious GC ReLU.
type Config struct {
	// RingBits is l of the share ring Z_2^l (8..64). Default 32.
	RingBits uint
	// OptimizedReLU selects the paper's section 4.2 sign-bit ReLU, which
	// is ~3x cheaper in garbled tables but reveals each activation's sign
	// to both parties. Off by default.
	OptimizedReLU bool
	// Seed, when non-zero, makes this endpoint's randomness deterministic
	// — for the client and the server role alike. With both parties
	// seeded the entire wire transcript is byte-reproducible, which the
	// conformance harness uses for golden-transcript regression tests
	// (testing/benchmarks only — never set in production).
	Seed uint64
	// Workers bounds the compute parallelism of the protocol kernels (OT
	// extension, garbling, triplet accumulation, matmul) on this party.
	// 0 means one worker per CPU. Purely local: the two parties may use
	// different values, and every value — combined with the same Seed —
	// yields byte-identical transcripts.
	Workers int
	// RoundTimeout bounds every blocking protocol round (one framed send
	// or receive): a peer that stalls longer fails the session with a
	// timeout error instead of wedging it forever. It does not bound a
	// server's idle wait between batches. 0 means no per-round deadline.
	// Purely local; the parties may configure different values.
	RoundTimeout time.Duration
	// Trace, when non-nil, receives one TraceSpan per protocol phase
	// (setup, offline, per-layer matmul/ReLU/pool, ...) as it completes,
	// with duration and communication deltas attached. Purely local
	// telemetry: the peer never observes it, and nil adds zero overhead
	// to the protocol hot path. See NewTraceCollector and NewTraceWriter
	// for ready-made sinks.
	Trace TraceSink
	// SessionID tags every span this endpoint emits, correlating traces
	// with logs and metrics when one process runs many sessions. Purely
	// local; 0 is a valid ID.
	SessionID uint64
}

func (c Config) ringBits() uint {
	if c.RingBits == 0 {
		return 32
	}
	return c.RingBits
}

// validate rejects configurations the lower layers would panic on.
func (c Config) validate() error {
	if b := c.ringBits(); b < 8 || b > 64 {
		return fmt.Errorf("abnn2: RingBits %d out of range [8,64]", b)
	}
	if c.Workers < 0 {
		return fmt.Errorf("abnn2: negative Workers %d", c.Workers)
	}
	if c.RoundTimeout < 0 {
		return fmt.Errorf("abnn2: negative RoundTimeout %v", c.RoundTimeout)
	}
	return nil
}

func (c Config) variant() core.ReLUVariant {
	if c.OptimizedReLU {
		return core.ReLUOptimized
	}
	return core.ReLUGC
}

func (c Config) rng() *prg.PRG {
	if c.Seed != 0 {
		return prg.New(prg.SeedFromInt(c.Seed))
	}
	return prg.New(prg.NewSeed())
}

// Arch is the public network architecture shared by both parties.
type Arch = core.Arch

// Serve runs the server side of secure inference until conn closes:
// setup, then one offline+online round per client batch request. It
// returns the session's traffic totals and a nil error when the client
// closes the connection cleanly.
func Serve(conn Conn, model *QuantizedModel, cfg Config) (Stats, error) {
	return ServeContext(context.Background(), conn, model, cfg)
}

// ServeContext is Serve with lifecycle control: cancelling ctx aborts the
// session even mid-round (a blocked send or receive is interrupted) and
// ServeContext returns an error wrapping ctx's error. Combined with
// Config.RoundTimeout this makes a session safe to run against an
// untrusted client: it can fail, but it cannot hang, leak its goroutine,
// or take the process down (peer-provoked panics surface as *PanicError).
//
// The returned Stats cover everything this endpoint sent and received
// over the session's lifetime, including the failed remainder of an
// aborted session.
func ServeContext(ctx context.Context, conn Conn, model *QuantizedModel, cfg Config) (Stats, error) {
	srv, err := newServer(ctx, conn, model, cfg)
	if err != nil {
		return Stats{}, err
	}
	defer srv.sc.release()
	for {
		err := srv.HandleBatch()
		if errors.Is(err, io.EOF) {
			return srv.Stats(), nil // client hung up cleanly between batches
		}
		if err != nil {
			return srv.Stats(), err
		}
	}
}

// Server is the model owner's endpoint.
type Server struct {
	eng *core.ServerEngine
	sc  *sessionConn
	tr  *trace.Tracer
}

// NewServer performs the cryptographic setup (base OTs) for the server
// role.
func NewServer(conn Conn, model *QuantizedModel, cfg Config) (*Server, error) {
	return newServer(context.Background(), conn, model, cfg)
}

func newServer(ctx context.Context, conn Conn, model *QuantizedModel, cfg Config) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sc := newSessionConn(ctx, conn, cfg.RoundTimeout)
	tr := cfg.tracer(sc, "server")
	scheme := model.qm.Layers[0].Scheme
	p := core.Params{Ring: ring.New(cfg.ringBits()), Scheme: scheme, Workers: cfg.Workers, Trace: tr}
	sp := tr.Start("setup")
	eng, err := guardVal("server setup", func() (*core.ServerEngine, error) {
		return core.NewServerEngineSeeded(sc, model.qm, p, cfg.variant(), cfg.rng())
	})
	sp.End(err)
	if err != nil {
		sc.release()
		return nil, err
	}
	return &Server{eng: eng, sc: sc, tr: tr}, nil
}

// tracer builds this endpoint's span recorder; nil when tracing is off,
// which disables every Start call with zero overhead.
func (c Config) tracer(sc *sessionConn, party string) *trace.Tracer {
	if c.Trace == nil {
		return nil
	}
	return trace.New(c.Trace,
		trace.WithParty(party),
		trace.WithSession(c.SessionID),
		trace.WithCounters(sc.counters))
}

// Close releases the server endpoint: it stops the session's
// cancellation watcher and closes the connection. Safe to call more than
// once.
func (s *Server) Close() error { return s.sc.Close() }

// Stats returns the traffic totals of this endpoint so far: BytesAB is
// what the server sent, BytesBA what it received. Metering is always on;
// it does not require tracing.
func (s *Server) Stats() Stats { return s.sc.Stats() }

// HandleBatch serves one prediction batch: it receives the client's batch
// announcement (size + output mode), runs the offline phase, then the
// online phase. The announcement wait is idle time (no round deadline);
// everything after it is deadline-bounded when RoundTimeout is set.
//
// A client that hangs up between batches is a clean shutdown, reported
// as io.EOF; a connection lost mid-batch is a protocol failure and
// surfaces as a non-EOF error.
func (s *Server) HandleBatch() error {
	// The idle span covers the between-batches wait (including the batch
	// announcement bytes), so root spans partition the session's traffic:
	// every byte falls in exactly one of setup, idle, or batch.
	isp := s.tr.Start("idle")
	raw, err := s.sc.recvIdle()
	if err != nil {
		if errors.Is(err, transport.ErrClosed) || errors.Is(err, io.EOF) {
			isp.End(nil)
			return io.EOF
		}
		isp.End(err)
		return err
	}
	isp.End(nil)
	bsp := s.tr.Start("batch")
	err = guard("handle batch", func() error {
		if len(raw) != 5 {
			return fmt.Errorf("abnn2: malformed batch announcement")
		}
		batch := int(uint32(raw[0]) | uint32(raw[1])<<8 | uint32(raw[2])<<16 | uint32(raw[3])<<24)
		if batch <= 0 || batch > 1<<20 {
			return fmt.Errorf("abnn2: batch size %d out of range", batch)
		}
		argmax := raw[4] == 1
		if raw[4] > 1 {
			return fmt.Errorf("abnn2: unknown output mode %d", raw[4])
		}
		bsp.SetBatch(batch)
		if err := s.eng.Offline(batch); err != nil {
			return err
		}
		if argmax {
			return s.eng.OnlineArgmax()
		}
		return s.eng.Online()
	})
	bsp.End(err)
	return err
}

// Client is the data owner's endpoint.
type Client struct {
	eng  *core.ClientEngine
	sc   *sessionConn
	tr   *trace.Tracer
	arch Arch
	rg   ring.Ring
	frac uint
}

// Dial performs the cryptographic setup for the client role. arch must
// match the server's model (it is public information, including the
// quantization scheme name).
func Dial(conn Conn, arch Arch, cfg Config) (*Client, error) {
	return DialContext(context.Background(), conn, arch, cfg)
}

// DialContext is Dial with lifecycle control: ctx governs the whole
// client session, not just setup. Cancelling it aborts any in-flight
// protocol round; subsequent calls fail immediately. Callers should
// Close the client when done so the cancellation watcher is released.
func DialContext(ctx context.Context, conn Conn, arch Arch, cfg Config) (*Client, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	scheme, err := quant.Parse(arch.SchemeName)
	if err != nil {
		return nil, fmt.Errorf("abnn2: architecture scheme: %w", err)
	}
	sc := newSessionConn(ctx, conn, cfg.RoundTimeout)
	tr := cfg.tracer(sc, "client")
	rg := ring.New(cfg.ringBits())
	p := core.Params{Ring: rg, Scheme: scheme, Workers: cfg.Workers, Trace: tr}
	sp := tr.Start("setup")
	eng, err := guardVal("client setup", func() (*core.ClientEngine, error) {
		return core.NewClientEngine(sc, arch, p, cfg.variant(), cfg.rng())
	})
	sp.End(err)
	if err != nil {
		sc.release()
		return nil, err
	}
	return &Client{eng: eng, sc: sc, tr: tr, arch: arch, rg: rg, frac: arch.Frac}, nil
}

// Close releases the client endpoint: it stops the session's
// cancellation watcher and closes the connection. Safe to call more than
// once.
func (c *Client) Close() error { return c.sc.Close() }

// Stats returns the traffic totals of this endpoint so far: BytesAB is
// what the client sent, BytesBA what it received. Metering is always on;
// it does not require tracing.
func (c *Client) Stats() Stats { return c.sc.Stats() }

// Classify securely evaluates the model on a batch of float inputs and
// returns the predicted class indices (computed locally from the full
// score vector; see ClassifyPrivate to reveal only the class).
func (c *Client) Classify(inputs [][]float64) ([]int, error) {
	out, err := c.Infer(inputs)
	if err != nil {
		return nil, err
	}
	classes := make([]int, len(inputs))
	for k := range inputs {
		best, bestV := 0, c.rg.Signed(out.At(0, k))
		for i := 1; i < out.Rows; i++ {
			if v := c.rg.Signed(out.At(i, k)); v > bestV {
				best, bestV = i, v
			}
		}
		classes[k] = best
	}
	return classes, nil
}

// ClassifyPrivate is Classify with a garbled-circuit argmax finish: the
// client learns only the winning class per input — not the scores — and
// the server still learns nothing. Costs one extra GC round.
func (c *Client) ClassifyPrivate(inputs [][]float64) ([]int, error) {
	bsp := c.tr.Start("batch").SetBatch(len(inputs))
	v, err := guardVal("private classification", func() ([]int, error) {
		X, err := c.encodeBatch(inputs)
		if err != nil {
			return nil, err
		}
		if err := c.announce(len(inputs), 1); err != nil {
			return nil, err
		}
		if err := c.eng.Offline(len(inputs)); err != nil {
			return nil, err
		}
		return c.eng.PredictArgmax(X)
	})
	bsp.End(err)
	return v, err
}

// Infer securely evaluates the model and returns the raw ring outputs
// (one column per input). Most callers want Classify.
func (c *Client) Infer(inputs [][]float64) (*ring.Mat, error) {
	bsp := c.tr.Start("batch").SetBatch(len(inputs))
	v, err := guardVal("inference", func() (*ring.Mat, error) {
		X, err := c.encodeBatch(inputs)
		if err != nil {
			return nil, err
		}
		if err := c.announce(len(inputs), 0); err != nil {
			return nil, err
		}
		if err := c.eng.Offline(len(inputs)); err != nil {
			return nil, err
		}
		return c.eng.Predict(X)
	})
	bsp.End(err)
	return v, err
}

func (c *Client) encodeBatch(inputs [][]float64) (*ring.Mat, error) {
	batch := len(inputs)
	if batch == 0 {
		return nil, fmt.Errorf("abnn2: empty batch")
	}
	in := c.arch.InputSize()
	X := ring.NewMat(in, batch)
	fp := ring.NewFixedPoint(c.rg, c.frac)
	for k, x := range inputs {
		if len(x) != in {
			return nil, fmt.Errorf("abnn2: input %d has %d features, want %d", k, len(x), in)
		}
		for i, v := range x {
			X.Set(i, k, fp.Encode(v))
		}
	}
	return X, nil
}

func (c *Client) announce(batch int, mode byte) error {
	ann := []byte{byte(batch), byte(batch >> 8), byte(batch >> 16), byte(batch >> 24), mode}
	return c.sc.Send(ann)
}
