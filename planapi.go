package abnn2

// Protocol-planner facade: the cost-model-driven per-layer backend
// planner in internal/plan, re-exported for users of the public API.
// A Plan assigns each linear layer an offline matmul backend (ABNN2
// under any η/γ decomposition, SecureML, MiniONN, or QUOTIENT); every
// backend produces the same additive triplet shares, so the plan moves
// offline cost around without changing any prediction bit. The client
// proposes its plan in the batch announcement; the server validates it
// against the model (layer count, weight ranges, backend
// applicability) and both parties execute the mixed schedule.

import "abnn2/internal/plan"

// Plan is a per-layer offline backend schedule; see Config.Plan. Build
// one with ChoosePlan (cost-model driven), plan.Uniform, or from its
// JSON form.
type Plan = plan.Plan

// PlanChoice is one layer's (backend, scheme) assignment.
type PlanChoice = plan.Choice

// PlanLink models the channel the planner prices communication against;
// use PlanLAN/PlanWAN or fill the fields directly.
type PlanLink = plan.Link

// PlanInput bundles everything ChoosePlan needs: architecture, ring
// width, batch size, and link. All fields are public protocol state.
type PlanInput = plan.Input

// PlanEstimate is a priced plan: predicted per-layer communication,
// flights, and seconds, comparable against measured trace spans.
type PlanEstimate = plan.Estimate

// PlanLAN is the datacenter link preset.
func PlanLAN() PlanLink { return plan.LAN() }

// PlanWAN is the wide-area link preset.
func PlanWAN() PlanLink { return plan.WAN() }

// ChoosePlan runs the planner: per layer, the cheapest applicable
// (backend, η/γ decomposition) under the link's cost model.
// Deterministic for a fixed input.
func ChoosePlan(in PlanInput) (*Plan, *PlanEstimate, error) { return plan.Choose(in) }
